"""Durable write-ahead request log for serve warm restart.

Admission durability: the drain journal (:mod:`repro.serve.drain`)
covers a *graceful* SIGTERM, but a ``kill -9`` gives the server no
chance to write anything — whatever sat in the admission queue or on a
worker is simply gone.  The :class:`RequestLog` closes that hole by
journaling every request *at admission time*, before the queue accepts
it: one JSON line per request (digest, scenario, QoS), flushed and
fsynced before the admit proceeds.

On restart, :meth:`ServeApp.start` replays the log: entries are deduped
by ``Scenario.digest()``; digests already in the content-addressed
result cache are complete (the ``cache.put`` *is* the commit record —
no separate completion marker is needed or trusted); the rest are
re-enqueued as recovery work and computed exactly once, since the cache
write is atomic and the payload is a deterministic pure function of the
scenario.  The replayed log is then compacted down to the still-pending
entries so it cannot grow across restarts.

Torn trailing lines (the signature of a mid-append kill) are skipped on
load, mirroring the campaign journal's tolerance.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

from repro.campaign.io import _fsync_dir, atomic_write

__all__ = ["RequestLog"]


class RequestLog:
    """Append-side and replay-side of the serve write-ahead log."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._handle = None
        self._lock = threading.Lock()   # handler threads append racily
        self.appended = 0

    # ------------------------------------------------------------------
    # Append (request path)
    # ------------------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            created = not self.path.exists()
            self._handle = open(self.path, "a", encoding="utf-8")
            if created:
                _fsync_dir(self.path.parent)

    def append(self, digest: str, scenario_dict: dict[str, Any], *,
               priority: float = 1.0, deadline_s: float | None = None
               ) -> None:
        """Durably journal one admitted request (flush + fsync before
        returning, so the admit is recoverable the instant it happens)."""
        entry = {"type": "request", "digest": digest,
                 "scenario": scenario_dict, "priority": priority,
                 "deadline_s": deadline_s}
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            self._ensure_open()
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.appended += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # Replay (startup path)
    # ------------------------------------------------------------------

    def load(self) -> list[dict[str, Any]]:
        """Parse the log, last-write-wins per digest, torn lines skipped.

        Returns entries in first-seen order (so recovery re-enqueues in
        roughly the original arrival order).
        """
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except (FileNotFoundError, NotADirectoryError):
            return []
        by_digest: dict[str, dict[str, Any]] = {}
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                if (entry.get("type") != "request"
                        or not isinstance(entry.get("digest"), str)
                        or not isinstance(entry.get("scenario"), dict)):
                    continue
            except json.JSONDecodeError:
                continue        # torn line from a mid-append kill
            digest = entry["digest"]
            if digest in by_digest:
                by_digest[digest].update(entry)    # dedupe, keep order
            else:
                by_digest[digest] = entry
        return list(by_digest.values())

    def compact(self, pending: list[dict[str, Any]]) -> None:
        """Atomically rewrite the log to just the still-pending entries
        (everything else is committed in the result cache)."""
        self.close()
        body = "".join(json.dumps(entry, sort_keys=True) + "\n"
                       for entry in pending)
        atomic_write(self.path, body)
