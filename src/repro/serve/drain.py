"""Graceful drain: stop admitting, finish or journal, exit clean.

On SIGTERM the service must neither drop accepted work silently nor
hang forever on it (Chan & Woelfel's recoverable-mutex lesson applied
to a process: correctness must survive being told to die mid-operation):

1. a :class:`DrainController` flips to *draining* — new ``POST
   /simulate`` requests are refused with 503 + ``Retry-After`` while
   ``/healthz`` reports ``draining`` so load balancers stop routing;
2. dispatchers keep consuming the admission queue for a bounded grace
   period, finishing what they can;
3. whatever is still queued when the grace expires is answered 503 and
   **journaled** — one JSON line per unfinished scenario, written
   atomically — so an operator (or the restarted service) can replay
   exactly what was accepted but never served;
4. the process exits 0: a drain is a success, not a crash.
"""

from __future__ import annotations

import json
import signal
import threading
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.campaign.io import atomic_write

__all__ = ["DrainController", "write_drain_journal", "load_drain_journal",
           "install_drain_signal"]


class DrainController:
    """One-way latch from *serving* to *draining*, with a completion
    event the server loop can wait on."""

    def __init__(self) -> None:
        self._draining = threading.Event()
        self._done = threading.Event()
        self.reason = ""

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def begin(self, reason: str = "signal") -> bool:
        """Start draining (idempotent); returns True on the first call."""
        if self._draining.is_set():
            return False
        self.reason = reason
        self._draining.set()
        return True

    def wait(self, timeout: float | None = None) -> bool:
        """Block until someone begins a drain (the serve main loop)."""
        return self._draining.wait(timeout)

    def finish(self) -> None:
        self._done.set()

    def wait_finished(self, timeout: float | None = None) -> bool:
        return self._done.wait(timeout)


def write_drain_journal(path: str | Path,
                        requests: Iterable[Any]) -> Path | None:
    """Persist the scenarios that were admitted but never served.

    Each line is ``{"digest", "priority", "scenario"}`` — everything
    needed to re-POST the work.  Returns None (and writes nothing) when
    there is nothing to journal.
    """
    lines = [
        json.dumps({
            "digest": request.digest,
            "priority": request.priority,
            "scenario": request.scenario_dict,
        }, sort_keys=True)
        for request in requests
    ]
    if not lines:
        return None
    return atomic_write(path, "\n".join(lines) + "\n")


def load_drain_journal(path: str | Path) -> list[dict[str, Any]]:
    """Parse a drain journal back into replayable entries (torn or
    blank lines are skipped — the journal may itself have been cut)."""
    entries: list[dict[str, Any]] = []
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return entries
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            entries.append({"digest": entry["digest"],
                            "priority": entry.get("priority", 1.0),
                            "scenario": entry["scenario"]})
        except (json.JSONDecodeError, KeyError, TypeError):
            continue
    return entries


def install_drain_signal(callback: Callable[[str], None],
                         signals: tuple[int, ...] = (signal.SIGTERM,
                                                     signal.SIGINT)):
    """Route SIGTERM/SIGINT into ``callback(signal_name)``.  Only valid
    from the main thread; returns the previous handlers for restore."""
    previous = {}
    for signum in signals:
        def _handler(num, frame, _cb=callback):
            _cb(signal.Signals(num).name)
        previous[signum] = signal.signal(signum, _handler)
    return previous
