"""Simulation-as-a-service (DESIGN.md §13).

A stdlib-only HTTP front end over :func:`repro.api.simulate`: bounded
admission with UAM-style shedding, a circuit breaker over crash-isolated
worker processes, a content-addressed result cache keyed by
``Scenario.digest()``, and graceful SIGTERM drain.  See
:mod:`repro.serve.app` for the pipeline overview.
"""

from repro.serve.admission import (
    AdmissionDecision,
    AdmissionQueue,
    ServeRequest,
)
from repro.serve.app import ServeApp, ServeConfig
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.cache import ResultCache, canonical_payload_json
from repro.serve.drain import (
    DrainController,
    install_drain_signal,
    load_drain_journal,
    write_drain_journal,
)
from repro.serve.loadgen import LoadConfig, run_load
from repro.serve.pool import PoolFailure, SimulationPool, result_payload
from repro.serve.wal import RequestLog

__all__ = [
    "AdmissionDecision",
    "AdmissionQueue",
    "ServeRequest",
    "ServeApp",
    "ServeConfig",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "ResultCache",
    "canonical_payload_json",
    "DrainController",
    "install_drain_signal",
    "load_drain_journal",
    "write_drain_journal",
    "LoadConfig",
    "run_load",
    "PoolFailure",
    "RequestLog",
    "SimulationPool",
    "result_payload",
]
