"""Crash-isolated simulation workers for the serve layer.

One :class:`SimulationPool` wraps a ``ProcessPoolExecutor`` exactly the
way the campaign engine does (DESIGN.md §9) and reuses the same failure
taxonomy and seeded backoff:

* a worker exception, dead worker process, or per-trial wall-clock
  timeout becomes a structured failure kind (``transient`` / ``crash``
  / ``timeout`` / ``exception`` / ``deadline``);
* retryable kinds (:data:`repro.campaign.spec.RETRYABLE_KINDS`) re-run
  after a seeded exponential backoff — deterministic in
  ``(retry_seed, submission index, attempt)``;
* a timed-out or broken pool is killed and rebuilt; trials in flight on
  the killed pool surface as retryable ``crash`` collateral;
* a request deadline caps the wait: a trial that cannot finish inside
  the caller's remaining budget fails with kind ``deadline`` (never
  retried — the client has already gone away).

Trials run :func:`simulate_trial`: rebuild the scenario from its wire
dict, simulate, and return the canonical result payload — the exact
bytes a cache hit would serve, so cached and computed responses are
indistinguishable.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable

from repro.campaign.chaos import ChaosPlan
from repro.campaign.seeding import backoff_delay, derive_seed
from repro.campaign.spec import (
    RETRYABLE_KINDS,
    SimulatedWorkerCrash,
    TransientTrialError,
    TrialFailure,
)

__all__ = ["SimulationPool", "PoolFailure", "simulate_trial",
           "result_payload"]


def close_inherited_fd(fd: int) -> None:
    """Worker initializer: drop a file descriptor inherited across
    ``fork`` (e.g. the serve layer's listening socket).  Must stay
    module-level so it pickles under non-fork start methods."""
    try:
        os.close(fd)
    except OSError:  # pragma: no cover - already closed
        pass


class PoolFailure(RuntimeError):
    """A trial that exhausted its attempts (or its caller's deadline)."""

    def __init__(self, kind: str, message: str,
                 failures: list[TrialFailure]) -> None:
        super().__init__(message)
        self.kind = kind
        self.failures = failures

    @property
    def attempts(self) -> int:
        return len(self.failures)


def result_payload(scenario, summary) -> dict[str, Any]:
    """The canonical, JSON-stable view of one ``simulate`` outcome.

    This is what the service returns, checksums and caches; it must be
    a pure function of the scenario (all fields deterministic at a
    fixed seed), so no wall-clock or machine-local data belongs here.
    """
    result = summary.result
    return {
        "scenario_digest": scenario.digest(),
        "policy": summary.policy,
        "sync": summary.sync,
        "seed": scenario.seed,
        "horizon": scenario.horizon,
        "load": summary.load,
        "aur": summary.aur,
        "cmr": summary.cmr,
        "jobs": len(result.records),
        "unfinished": result.unfinished,
        "total_retries": result.total_retries,
        "total_blockings": result.total_blockings,
        "accrued_utility": result.accrued_utility,
        "max_possible_utility": result.max_possible_utility,
        "scheduler_invocations": result.scheduler_invocations,
    }


def simulate_trial(scenario_dict: dict[str, Any],
                   chaos: ChaosPlan | None = None,
                   index: int = 0, attempt: int = 0) -> dict[str, Any]:
    """Worker-side entry point (module-level, hence picklable)."""
    from repro.api import simulate
    from repro.scenario import Scenario

    if chaos is not None:
        chaos.fire(index, attempt, in_worker=True)
    scenario = Scenario.from_dict(scenario_dict)
    return result_payload(scenario, simulate(scenario))


class SimulationPool:
    """Shared, rebuild-on-failure process pool for serve dispatchers.

    Thread-safe: several dispatcher threads call :meth:`execute`
    concurrently; rebuilds are serialized and identity-checked so one
    sick pool is only killed once.
    """

    def __init__(self, workers: int = 2, *,
                 trial_timeout: float | None = None,
                 max_attempts: int = 3,
                 retry_seed: int = 0,
                 backoff_base: float = 0.02,
                 backoff_factor: float = 2.0,
                 backoff_cap: float = 0.5,
                 backoff_jitter: float = 0.25,
                 chaos: ChaosPlan | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.trial_timeout = trial_timeout
        self.max_attempts = max(1, max_attempts)
        self.retry_seed = retry_seed
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self.chaos = chaos if chaos is not None and not chaos.empty else None
        self._sleep = sleep
        self._clock = clock
        self._lock = threading.Lock()
        #: Optional per-worker initializer (picklable zero-arg callable),
        #: run in every worker process the executor forks — including
        #: respawns after a rebuild.  The serve layer uses it to close
        #: the inherited HTTP listener so orphaned workers of a
        #: SIGKILLed server cannot hold the port against a warm restart.
        self.worker_init: Callable[[], None] | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._submissions = 0
        self._busy = 0
        self.executions = 0
        self.retries = 0
        self.rebuilds = 0
        self.failure_kinds: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Executor lifecycle
    # ------------------------------------------------------------------

    def _new_executor(self) -> ProcessPoolExecutor:
        try:
            context = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = get_context()
        return ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=context,
                                   initializer=self.worker_init)

    def _executor_ref(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = self._new_executor()
            return self._executor

    def _kill(self, executor: ProcessPoolExecutor) -> None:
        """Kill ``executor`` if it is still the live one (dead or stuck
        workers cannot be waited out; terminate first so shutdown cannot
        block on a hung trial)."""
        with self._lock:
            if self._executor is not executor:
                return              # someone else already rebuilt
            self._executor = None
            self.rebuilds += 1
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.terminate()
            except (OSError, AttributeError):  # pragma: no cover
                pass
        executor.shutdown(wait=True, cancel_futures=True)

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    @property
    def busy(self) -> int:
        with self._lock:
            return self._busy

    def _note_failure(self, kind: str) -> None:
        with self._lock:
            self.failure_kinds[kind] = self.failure_kinds.get(kind, 0) + 1

    def execute(self, scenario_dict: dict[str, Any],
                deadline: float | None = None) -> dict[str, Any]:
        """Run one scenario to a verified payload, or raise
        :class:`PoolFailure` with the terminal failure kind.

        ``deadline`` is absolute on the pool's clock; the per-attempt
        wait is the smaller of the trial timeout and the remaining
        deadline budget.
        """
        failures: list[TrialFailure] = []
        for attempt in range(self.max_attempts):
            remaining = None if deadline is None \
                else deadline - self._clock()
            if remaining is not None and remaining <= 0:
                failures.append(TrialFailure(
                    index=-1, attempt=attempt, kind="deadline",
                    message="request deadline exhausted before dispatch"))
                self._note_failure("deadline")
                raise PoolFailure("deadline", "request deadline exhausted",
                                  failures)
            with self._lock:
                index = self._submissions
                self._submissions += 1
            executor = self._executor_ref()
            budget = self.trial_timeout
            if remaining is not None:
                budget = remaining if budget is None \
                    else min(budget, remaining)
            kind = message = None
            try:
                # Chaos is addressed purely by submission index here
                # (every attempt gets a fresh index), so the attempt
                # passed to the plan is pinned to its own on_attempt.
                chaos_attempt = self.chaos.on_attempt \
                    if self.chaos is not None else 0
                future = executor.submit(simulate_trial, scenario_dict,
                                         self.chaos, index, chaos_attempt)
            except RuntimeError as exc:   # submit raced a rebuild
                kind, message = "crash", f"executor unavailable: {exc}"
            if kind is None:
                with self._lock:
                    self._busy += 1
                try:
                    value = future.result(timeout=budget)
                    with self._lock:
                        self.executions += 1
                    return value
                except FutureTimeoutError:
                    future.cancel()
                    self._kill(executor)
                    # A hung *worker* (trial timeout) is a pool fault
                    # and retryable; an exhausted *request* budget is
                    # the client's deadline and is not.
                    if self.trial_timeout is not None and \
                            budget >= self.trial_timeout:
                        kind = "timeout"
                        message = (f"trial exceeded {self.trial_timeout:.3g}s "
                                   f"wall-clock budget")
                    else:
                        kind = "deadline"
                        message = "request deadline exhausted mid-trial"
                except (BrokenProcessPool, CancelledError) as exc:
                    self._kill(executor)
                    kind = "crash"
                    message = f"{type(exc).__name__}: {exc}"
                except (SimulatedWorkerCrash,) as exc:
                    kind, message = "crash", str(exc)
                except TransientTrialError as exc:
                    kind, message = "transient", str(exc)
                except Exception as exc:   # the scenario itself raised
                    kind = "exception"
                    message = f"{type(exc).__name__}: {exc}"
                finally:
                    with self._lock:
                        self._busy -= 1
            failures.append(TrialFailure(index=index, attempt=attempt,
                                         kind=kind, message=message))
            self._note_failure(kind)
            retryable = kind in RETRYABLE_KINDS \
                and attempt + 1 < self.max_attempts
            if not retryable:
                raise PoolFailure(kind, message, failures)
            with self._lock:
                self.retries += 1
            self._sleep(backoff_delay(
                attempt, base=self.backoff_base,
                factor=self.backoff_factor, cap=self.backoff_cap,
                jitter=self.backoff_jitter,
                seed=derive_seed(self.retry_seed, index,
                                 f"backoff:{attempt}")))
        raise AssertionError("unreachable")  # pragma: no cover
