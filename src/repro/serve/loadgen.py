"""Seeded load generator for the serve layer (``repro load``).

Generates a *deterministic* request schedule — arrival times, scenario
parameters, priorities — entirely from one seed, so a load run is
reproducible: same seed, same requests in the same order per consumer.
The scenario pool is intentionally smaller than the request count
(``n_scenarios`` distinct scenarios, cycled), so a run exercises the
content-addressed cache: repeats of a scenario must come back as
``cached: true`` hits.

The report separates outcomes by the service's own contract — shed
(429) and unavailable (503) are *load signals*, not errors — and
records p50/p99/mean latency plus achieved throughput, which the serve
benchmark feeds into the perf-trajectory gate.

Optionally (``verify=True``) every unique 200-payload is byte-compared
against a clean, local ``simulate(scenario)`` at the same seed: the
chaos acceptance criterion that crashes, retries and cache round-trips
never change a result.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass
from typing import Any
from urllib.parse import urlsplit

__all__ = ["LoadConfig", "run_load", "percentile"]

#: Fixed outcome vocabulary (stable ``--json`` schema keys).
OUTCOMES = ("ok", "shed", "unavailable", "failed", "deadline",
            "rejected", "transport_error", "other")

_STATUS_OUTCOME = {200: "ok", 429: "shed", 503: "unavailable",
                   500: "failed", 504: "deadline", 400: "rejected",
                   413: "rejected"}


@dataclass(frozen=True)
class LoadConfig:
    """One reproducible load run against a running serve instance."""

    url: str
    consumers: int = 4           # concurrent client threads
    rate: float = 50.0           # target arrivals per second (aggregate)
    duration_s: float = 5.0      # schedule length
    seed: int = 0                # seeds schedule + scenario pool
    n_scenarios: int = 8         # distinct scenarios cycled (cache reuse)
    n_tasks: int = 6             # scenario size knobs
    horizon_us: int = 20_000
    load: float = 0.6
    sync: str = "lockfree"
    deadline_s: float = 30.0     # per-request deadline sent to the server
    priority_levels: int = 3     # priorities drawn from 1..levels
    timeout_s: float = 60.0      # socket timeout per request
    verify: bool = False         # byte-compare 200s against local runs

    def __post_init__(self) -> None:
        if self.consumers < 1:
            raise ValueError("consumers must be >= 1")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.n_scenarios < 1:
            raise ValueError("n_scenarios must be >= 1")


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted list (0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q * (len(sorted_values) - 1)))))
    return sorted_values[rank]


def _build_scenarios(config: LoadConfig) -> list[dict[str, Any]]:
    from repro.api import quick_scenario

    scenarios = []
    for index in range(config.n_scenarios):
        scenario = quick_scenario(
            n_tasks=config.n_tasks,
            sync=config.sync,
            load=config.load,
            horizon_us=config.horizon_us,
            seed=config.seed * 10_007 + index,
        )
        scenarios.append(scenario.to_dict())
    return scenarios


def _build_schedule(config: LoadConfig,
                    scenarios: list[dict[str, Any]]) -> list[list[dict]]:
    """Per-consumer arrival plans, fully determined by the seed.

    Arrival ``i`` fires at ``i/rate`` seconds with a small seeded jitter,
    uses scenario ``i % n_scenarios``, and goes to consumer
    ``i % consumers`` — a uniform open-loop arrival process.
    """
    rng = random.Random(config.seed)
    total = max(1, int(config.rate * config.duration_s))
    spacing = 1.0 / config.rate
    plans: list[list[dict]] = [[] for _ in range(config.consumers)]
    for index in range(total):
        jitter = rng.uniform(-0.25, 0.25) * spacing
        plans[index % config.consumers].append({
            "at": max(0.0, index * spacing + jitter),
            "scenario": scenarios[index % len(scenarios)],
            "priority": float(1 + rng.randrange(config.priority_levels)),
            "index": index,
        })
    return plans


class _Collector:
    """Thread-safe outcome sink for consumer threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.counts = {outcome: 0 for outcome in OUTCOMES}
        self.ok_latencies: list[float] = []
        self.cache_hits = 0
        self.bodies: dict[str, str] = {}   # digest -> canonical payload
        self.mismatches: list[str] = []

    def record(self, outcome: str, latency: float,
               body: dict[str, Any] | None) -> None:
        with self.lock:
            self.counts[outcome] = self.counts.get(outcome, 0) + 1
            if outcome != "ok" or body is None:
                return
            self.ok_latencies.append(latency)
            if body.get("cached"):
                self.cache_hits += 1
            digest = body.get("digest")
            result = body.get("result")
            if isinstance(digest, str) and isinstance(result, dict):
                canonical = json.dumps(result, sort_keys=True,
                                       separators=(",", ":"))
                previous = self.bodies.setdefault(digest, canonical)
                if previous != canonical:
                    self.mismatches.append(
                        f"digest {digest[:12]}: divergent 200 payloads")


def _consume(plan: list[dict], config: LoadConfig, start: float,
             host: str, port: int, base_path: str,
             collector: _Collector) -> None:
    connection = http.client.HTTPConnection(host, port,
                                            timeout=config.timeout_s)
    try:
        for entry in plan:
            delay = start + entry["at"] - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            body = json.dumps({
                "scenario": entry["scenario"],
                "priority": entry["priority"],
                "deadline_s": config.deadline_s,
            }).encode("utf-8")
            sent = time.monotonic()
            try:
                connection.request(
                    "POST", base_path + "/simulate", body=body,
                    headers={"Content-Type": "application/json"})
                response = connection.getresponse()
                raw = response.read()
                status = response.status
            except (OSError, http.client.HTTPException):
                collector.record("transport_error",
                                 time.monotonic() - sent, None)
                connection.close()
                connection = http.client.HTTPConnection(
                    host, port, timeout=config.timeout_s)
                continue
            latency = time.monotonic() - sent
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = None
            collector.record(_STATUS_OUTCOME.get(status, "other"),
                             latency, payload)
    finally:
        connection.close()


def _verify_against_local(collector: _Collector,
                          scenarios: list[dict[str, Any]]) -> dict[str, Any]:
    """Recompute every scenario locally; byte-compare with served 200s."""
    from repro.scenario import Scenario
    from repro.serve.cache import canonical_payload_json
    from repro.serve.pool import result_payload

    from repro.api import simulate

    checked = 0
    mismatches = list(collector.mismatches)
    for scenario_dict in scenarios:
        scenario = Scenario.from_dict(scenario_dict)
        digest = scenario.digest()
        served = collector.bodies.get(digest)
        if served is None:
            continue        # this scenario never got a 200
        local = canonical_payload_json(
            result_payload(scenario, simulate(scenario)))
        checked += 1
        if served != local:
            mismatches.append(
                f"digest {digest[:12]}: served payload differs from "
                f"local simulate()")
    return {"verified": checked, "mismatches": mismatches}


def run_load(config: LoadConfig) -> dict[str, Any]:
    """Run the load; return the report dict (the ``repro load --json``
    payload body)."""
    parts = urlsplit(config.url)
    if parts.scheme not in ("http", ""):
        raise ValueError(f"unsupported scheme {parts.scheme!r}")
    host = parts.hostname or "127.0.0.1"
    port = parts.port or 80
    base_path = parts.path.rstrip("/")

    scenarios = _build_scenarios(config)
    plans = _build_schedule(config, scenarios)
    collector = _Collector()
    start = time.monotonic() + 0.05     # common epoch for all consumers
    threads = [
        threading.Thread(target=_consume,
                         args=(plan, config, start, host, port, base_path,
                               collector),
                         name=f"repro-load-{index}", daemon=True)
        for index, plan in enumerate(plans)
    ]
    began = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.monotonic() - began

    latencies = sorted(collector.ok_latencies)
    sent = sum(collector.counts.values())
    report: dict[str, Any] = {
        "url": config.url,
        "seed": config.seed,
        "consumers": config.consumers,
        "rate": config.rate,
        "duration_s": config.duration_s,
        "n_scenarios": config.n_scenarios,
        "requests_sent": sent,
        "outcomes": {outcome: collector.counts.get(outcome, 0)
                     for outcome in OUTCOMES},
        "cache_hits": collector.cache_hits,
        "cache_hit_rate": (collector.cache_hits / len(latencies)
                           if latencies else 0.0),
        "latency_s": {
            "p50": percentile(latencies, 0.50),
            "p99": percentile(latencies, 0.99),
            "mean": (sum(latencies) / len(latencies)) if latencies else 0.0,
            "max": latencies[-1] if latencies else 0.0,
        },
        "throughput_rps": (len(latencies) / wall_s) if wall_s > 0 else 0.0,
        "wall_s": wall_s,
    }
    if config.verify:
        report["verification"] = _verify_against_local(collector, scenarios)
    elif collector.mismatches:
        report["verification"] = {"verified": 0,
                                  "mismatches": collector.mismatches}
    return report
