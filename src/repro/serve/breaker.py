"""Circuit breaker over the simulation worker pool.

Consecutive pool-level failures (worker crashes, trial timeouts) mean
the pool itself is sick — retrying every incoming request against it
just burns queue capacity and worker rebuilds.  The breaker converts
that state into fast, honest 503s:

* **closed** — normal service; failures are counted, any success resets
  the count;
* **open** — tripped after ``threshold`` consecutive failures; all work
  is refused immediately (with a ``Retry-After`` of the time left until
  the next probe);
* **half-open** — after ``reset_after`` seconds the breaker admits a
  limited number of probe requests; one success re-closes it, one
  failure re-opens it (with a fresh timer).

Deterministic and testable: time is an injectable monotonic clock, and
every transition is counted for ``/metrics``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding for /metrics (state name -> numeric sample).
STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Thread-safe three-state breaker with a monotonic-clock timer."""

    def __init__(self, threshold: int = 3, reset_after: float = 2.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if reset_after < 0:
            raise ValueError("reset_after must be >= 0")
        self.threshold = threshold
        self.reset_after = reset_after
        self.half_open_probes = max(1, half_open_probes)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.transitions = 0
        self.rejected_total = 0

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------

    def _set_state(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self.transitions += 1

    def allow(self) -> bool:
        """May one unit of work proceed right now?

        In half-open state this *claims a probe slot*; callers that get
        ``True`` must follow up with :meth:`record_success` or
        :meth:`record_failure` (the serve dispatcher always does).
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.reset_after:
                    self._set_state(HALF_OPEN)
                    self._probes_in_flight = 0
                else:
                    self.rejected_total += 1
                    return False
            # Half-open: admit up to half_open_probes concurrent probes.
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self.rejected_total += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._set_state(CLOSED)

    def record_neutral(self) -> None:
        """Release a claimed probe slot without judging pool health
        (e.g. the trial was cancelled by a client deadline)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._probes_in_flight = max(0, self._probes_in_flight - 1)
                self._opened_at = self._clock()
                self._set_state(OPEN)
                self._consecutive_failures = self.threshold
                return
            self._consecutive_failures += 1
            if self._state == CLOSED and \
                    self._consecutive_failures >= self.threshold:
                self._opened_at = self._clock()
                self._set_state(OPEN)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            if self._state == OPEN and \
                    self._clock() - self._opened_at >= self.reset_after:
                return HALF_OPEN    # would admit a probe on next allow()
            return self._state

    @property
    def state_code(self) -> int:
        return STATE_CODES[self.state]

    def retry_after(self) -> float:
        """Seconds until the breaker would admit a probe (0 when it
        already would)."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            return max(0.0,
                       self.reset_after - (self._clock() - self._opened_at))
