"""Simulation-as-a-service: the HTTP front end (stdlib only).

``POST /simulate`` accepts a frozen :class:`~repro.scenario.Scenario`
as JSON and returns its canonical result payload.  The request path is
a pipeline of explicit robustness stages, each independently tested:

    handler ──► cache ──► admission queue ──► breaker ──► worker pool
                  ▲                                            │
                  └──────────── verified payload ◄─────────────┘

* **cache** (:mod:`repro.serve.cache`): content-addressed by
  ``Scenario.digest()``; hits are served immediately and re-verified on
  every read (corruption quarantines and recomputes);
* **admission** (:mod:`repro.serve.admission`): bounded queue with
  UAM-style utility-density shedding — overload answers 429 +
  ``Retry-After``, never an unbounded queue;
* **breaker** (:mod:`repro.serve.breaker`): consecutive pool failures
  trip it open (fast 503s), a timer half-opens it, one good probe
  re-closes it;
* **pool** (:mod:`repro.serve.pool`): crash-isolated worker processes
  with per-trial timeouts, kill-and-rebuild, and seeded backoff retry;
* **drain** (:mod:`repro.serve.drain`): SIGTERM stops admission,
  finishes or journals in-flight work, and exits 0.

``GET /metrics`` exposes the whole pipeline through the PR 4 metrics
registry: hit rate, queue depth, shed count, breaker state, per-worker
saturation, request latency.  ``GET /healthz`` and ``GET /stats`` serve
load balancers and the CLI/CI harness respectively.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.campaign.chaos import ChaosPlan
from repro.obs.metrics import (
    OPENMETRICS_CONTENT_TYPE,
    MetricsRegistry,
    snapshot_openmetrics,
)
from repro.obs.observer import Observer
from repro.scenario import Scenario
from repro.serve.admission import AdmissionQueue, ServeRequest
from repro.serve.breaker import CircuitBreaker, OPEN
from repro.serve.cache import ResultCache
from repro.serve.drain import DrainController, write_drain_journal
from repro.serve.pool import PoolFailure, SimulationPool, close_inherited_fd
from repro.serve.wal import RequestLog

__all__ = ["ServeConfig", "ServeApp"]

JSON_CONTENT_TYPE = "application/json; charset=utf-8"

#: Largest accepted request body; a scenario dict is a few hundred
#: bytes, so anything near this is a misbehaving client.
MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Everything that defines one service instance."""

    host: str = "127.0.0.1"
    port: int = 0                        # 0 = ephemeral
    workers: int = 2                     # simulation worker processes
    queue_capacity: int = 64             # hard admission bound
    queue_watermark: int | None = None   # shedding starts here (<= cap)
    trial_timeout: float | None = 30.0   # per-trial wall clock (seconds)
    max_attempts: int = 3                # tries per trial (1 = no retry)
    retry_seed: int = 0                  # seeds the backoff schedule
    default_deadline_s: float = 60.0     # per-request deadline default
    retry_after_s: float = 1.0           # Retry-After hint on 429/503
    breaker_threshold: int = 3           # consecutive failures to trip
    breaker_reset_s: float = 2.0         # open -> half-open timer
    cache_dir: str = ".repro-serve-cache"
    drain_grace_s: float = 10.0          # finish window on SIGTERM
    drain_journal: str | None = None     # unfinished-work journal path
    #: Write-ahead request log (repro.serve.wal): admitted requests are
    #: journaled durably and replayed on warm restart after a kill -9.
    request_log: str | None = None
    chaos: ChaosPlan | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")

    def to_dict(self) -> dict[str, Any]:
        """The startup config echo (JSON-safe; chaos reduced to flags)."""
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "queue_capacity": self.queue_capacity,
            "queue_watermark": (self.queue_capacity
                                if self.queue_watermark is None
                                else self.queue_watermark),
            "trial_timeout_s": self.trial_timeout,
            "max_attempts": self.max_attempts,
            "default_deadline_s": self.default_deadline_s,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset_s": self.breaker_reset_s,
            "cache_dir": self.cache_dir,
            "drain_grace_s": self.drain_grace_s,
            "drain_journal": self.drain_journal,
            "request_log": self.request_log,
            "chaos": self.chaos is not None,
        }


class ServeApp:
    """The service: owns the pipeline stages and the dispatcher threads.

    Usable without HTTP — tests call :meth:`handle_simulate` directly —
    or started as a real server with :meth:`start` /
    :meth:`shutdown`.
    """

    def __init__(self, config: ServeConfig | None = None, *,
                 observer: Observer | None = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.observer = observer if observer is not None else Observer()
        self.cache = ResultCache(cfg.cache_dir)
        self.queue = AdmissionQueue(capacity=cfg.queue_capacity,
                                    watermark=cfg.queue_watermark,
                                    retry_after_s=cfg.retry_after_s)
        self.breaker = CircuitBreaker(threshold=cfg.breaker_threshold,
                                      reset_after=cfg.breaker_reset_s)
        self.pool = SimulationPool(workers=cfg.workers,
                                   trial_timeout=cfg.trial_timeout,
                                   max_attempts=cfg.max_attempts,
                                   retry_seed=cfg.retry_seed,
                                   chaos=cfg.chaos)
        self.drain = DrainController()
        self._clock = time.monotonic
        self._lock = threading.Lock()
        self._status_counts: dict[str, int] = {}
        self._active_dispatch = 0
        self._stop = threading.Event()
        self._dispatchers: list[threading.Thread] = []
        self._server: "_ServeHTTPServer | None" = None
        self._server_thread: threading.Thread | None = None
        self._journaled = 0
        self._started_at: float | None = None
        self.request_log = (RequestLog(cfg.request_log)
                            if cfg.request_log else None)
        self._recovered_total = 0
        #: Digests replayed from the request log whose results are not
        #: yet in the cache; recovery is complete when this drains.
        self._recovery_pending: set[str] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ServeApp":
        if self._server is not None:
            return self
        self._started_at = self._clock()
        # Bind before anything can fork a worker: every pool worker
        # (including respawns after a rebuild) closes the inherited
        # listener, so orphans of a SIGKILLed server cannot keep the
        # port bound against a warm restart.
        server = _ServeHTTPServer((self.config.host, self.config.port),
                                  _ServeHandler)
        server.app = self
        self._server = server
        self.pool.worker_init = functools.partial(
            close_inherited_fd, server.socket.fileno())
        self._recover()
        for index in range(self.config.workers):
            thread = threading.Thread(target=self._dispatch_loop,
                                      name=f"repro-serve-dispatch-{index}",
                                      daemon=True)
            thread.start()
            self._dispatchers.append(thread)
        self._server_thread = threading.Thread(
            target=server.serve_forever, name="repro-serve-http",
            daemon=True)
        self._server_thread.start()
        return self

    def _recover(self) -> None:
        """Warm restart: replay the write-ahead request log.

        Entries whose digest is already in the result cache were fully
        served before the crash (the atomic ``cache.put`` is the commit
        record); the rest — queued or in-flight when the server died —
        are re-enqueued as orphan requests and computed exactly once.
        The log is then compacted to the still-pending entries.
        """
        if self.request_log is None:
            return
        entries = self.request_log.load()
        if not entries:
            return
        pending = [entry for entry in entries
                   if self.cache.get(entry["digest"]) is None]
        for entry in pending:
            request = ServeRequest(
                entry["scenario"], entry["digest"],
                priority=float(entry.get("priority") or 1.0),
                cost=max(float(entry["scenario"].get("horizon", 1.0)), 1.0),
                # The original client is gone; recovered work keeps no
                # deadline so it always reaches the cache.
                deadline=None,
                enqueued_at=self._clock(),
            )
            self._recovery_pending.add(entry["digest"])
            self.queue.submit(request)
        self._recovered_total = len(pending)
        self.request_log.compact(pending)

    @property
    def recovery_status(self) -> dict[str, Any]:
        with self._lock:
            pending = len(self._recovery_pending)
        return {
            "enabled": self.request_log is not None,
            "recovered": self._recovered_total,
            "pending": pending,
            "complete": pending == 0,
        }

    @property
    def port(self) -> int | None:
        if self._server is None:
            return None
        return self._server.server_address[1]

    @property
    def url(self) -> str | None:
        if self._server is None:
            return None
        return f"http://{self.config.host}:{self.port}"

    def shutdown(self, grace_s: float | None = None,
                 reason: str = "shutdown") -> dict[str, Any]:
        """Graceful drain: stop admitting, give in-flight work ``grace_s``
        seconds to finish, journal + 503 the rest, stop everything.
        Returns a drain report (finished/journaled counts)."""
        grace = self.config.drain_grace_s if grace_s is None else grace_s
        self.drain.begin(reason)
        deadline = self._clock() + max(0.0, grace)
        while self._clock() < deadline:
            with self._lock:
                active = self._active_dispatch
            if self.queue.depth() == 0 and active == 0:
                break
            time.sleep(0.02)
        leftover = self.queue.close()
        journal_path = None
        if leftover and self.config.drain_journal:
            journal_path = write_drain_journal(self.config.drain_journal,
                                               leftover)
            self._journaled = len(leftover)
        for request in leftover:
            self._answer(request, 503, {
                "error": "draining",
                "detail": "accepted but not served before drain; "
                          "journaled" if journal_path else
                          "accepted but not served before drain",
                "digest": request.digest,
            })
        self._stop.set()
        for thread in self._dispatchers:
            thread.join(timeout=5.0)
        self._dispatchers.clear()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
            self._server_thread = None
        self.pool.shutdown()
        if self.request_log is not None:
            self.request_log.close()
        self.drain.finish()
        return {
            "reason": reason,
            "unfinished_journaled": self._journaled,
            "drain_journal": str(journal_path) if journal_path else None,
        }

    def close(self) -> None:
        self.shutdown(grace_s=0.0, reason="close")

    def __enter__(self) -> "ServeApp":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Request path (handler threads)
    # ------------------------------------------------------------------

    def _count(self, status: int, reason: str = "") -> None:
        key = f"{status}:{reason}" if reason else str(status)
        with self._lock:
            self._status_counts[key] = self._status_counts.get(key, 0) + 1

    def handle_simulate(self, body: bytes) -> tuple[int, dict[str, Any],
                                                    dict[str, str]]:
        """The full pipeline for one request; returns
        ``(status, body_dict, extra_headers)``."""
        started = self._clock()
        status, payload, headers = self._handle_simulate(body)
        self._count(status, str(payload.get("reason", "")) or "")
        self.observer.counter(f"serve.responses.{status}")
        self.observer.histogram("serve.request_s", self._clock() - started)
        return status, payload, headers

    def _handle_simulate(self, body: bytes) -> tuple[int, dict[str, Any],
                                                     dict[str, str]]:
        cfg = self.config
        retry_after = {"Retry-After": f"{cfg.retry_after_s:.3g}"}
        if self.drain.draining:
            return 503, {"error": "draining", "reason": "draining"}, \
                retry_after
        try:
            document = json.loads(body.decode("utf-8"))
            if not isinstance(document, dict):
                raise ValueError("request body must be a JSON object")
        except (UnicodeDecodeError, json.JSONDecodeError, ValueError) as exc:
            return 400, {"error": "bad_request",
                         "detail": f"unparseable body: {exc}"}, {}
        scenario_dict = document.get("scenario", document)
        try:
            if not isinstance(scenario_dict, dict):
                raise ValueError("scenario must be a JSON object")
            scenario = Scenario.from_dict(scenario_dict)
            digest = scenario.digest()
        except (ValueError, TypeError, KeyError) as exc:
            return 400, {"error": "bad_scenario", "detail": str(exc)}, {}
        try:
            priority = float(document.get("priority", 1.0))
            deadline_s = float(document.get("deadline_s",
                                            cfg.default_deadline_s))
            if deadline_s <= 0:
                raise ValueError("deadline_s must be positive")
        except (TypeError, ValueError) as exc:
            return 400, {"error": "bad_request", "detail": str(exc)}, {}

        cached = self.cache.get(digest)
        if cached is not None:
            return 200, {"digest": digest, "cached": True,
                         "result": cached}, {}

        # Fast-fail while the breaker is hard open: joining the queue
        # would only time the client out.  Half-open traffic still flows
        # (the dispatcher claims the probe slots).
        if self.breaker.state == OPEN:
            return 503, {"error": "breaker_open", "reason": "breaker",
                         "digest": digest}, \
                {"Retry-After": f"{max(self.breaker.retry_after(), 0.05):.3g}"}

        request = ServeRequest(
            scenario.to_dict(), digest,
            priority=priority,
            # UAM cost estimate: simulated horizon is the dominant term
            # of a trial's wall clock.
            cost=float(scenario.horizon),
            deadline=self._clock() + deadline_s,
            enqueued_at=self._clock(),
        )
        # Write-ahead: journal before the queue can accept, so no
        # admitted request is ever unlogged.  (A request logged but then
        # shed is re-checked against the cache on restart — recomputing
        # it is idempotent, losing it would not be.)
        if self.request_log is not None and not self.drain.draining:
            self.request_log.append(digest, request.scenario_dict,
                                    priority=priority,
                                    deadline_s=deadline_s)
        decision = self.queue.submit(request)
        if decision.shed is not None:
            self._answer(decision.shed, 429, {
                "error": "shed", "reason": "evicted",
                "detail": "evicted by a higher-density request",
                "digest": decision.shed.digest,
            }, headers=retry_after)
        if not decision.admitted:
            if decision.reason == "draining":
                return 503, {"error": "draining", "reason": "draining",
                             "digest": digest}, retry_after
            return 429, {"error": "shed", "reason": "queue_full",
                         "detail": "admission queue past watermark and "
                                   "request density too low",
                         "digest": digest}, retry_after

        if not request.wait(deadline_s):
            request.cancel()
            return 504, {"error": "deadline_exceeded", "reason": "deadline",
                         "digest": digest,
                         "deadline_s": deadline_s}, {}
        headers = dict(request.body.pop("_headers", {})) \
            if isinstance(request.body, dict) else {}
        return request.status, request.body, headers

    # ------------------------------------------------------------------
    # Dispatch path (dispatcher threads)
    # ------------------------------------------------------------------

    def _answer(self, request: ServeRequest, status: int,
                body: dict[str, Any],
                headers: dict[str, str] | None = None) -> None:
        if headers:
            body = {**body, "_headers": headers}
        request.finish(status, body)

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            request = self.queue.take(timeout=0.1)
            if request is None:
                continue
            with self._lock:
                self._active_dispatch += 1
            try:
                self._dispatch_one(request)
            except Exception as exc:  # pragma: no cover - last resort
                self._answer(request, 500,
                             {"error": "internal",
                              "detail": f"{type(exc).__name__}: {exc}",
                              "digest": request.digest})
            finally:
                with self._lock:
                    self._active_dispatch -= 1

    def _dispatch_one(self, request: ServeRequest) -> None:
        cfg = self.config
        if request.cancelled:
            self.observer.counter("serve.abandoned_in_queue")
            return
        if request.deadline is not None and \
                self._clock() >= request.deadline:
            self.observer.counter("serve.abandoned_in_queue")
            self._answer(request, 504, {"error": "deadline_exceeded",
                                        "reason": "deadline",
                                        "digest": request.digest})
            return
        if not self.breaker.allow():
            self._answer(
                request, 503,
                {"error": "breaker_open", "reason": "breaker",
                 "digest": request.digest},
                headers={"Retry-After":
                         f"{max(self.breaker.retry_after(), 0.05):.3g}"})
            return
        try:
            payload = self.pool.execute(request.scenario_dict,
                                        deadline=request.deadline)
        except PoolFailure as failure:
            if failure.kind == "deadline":
                # The pool is not to blame for a client deadline; free
                # the probe slot without judging the pool's health.
                self.breaker.record_neutral()
                self.observer.counter("serve.deadline_cancelled")
                self._answer(request, 504,
                             {"error": "deadline_exceeded",
                              "reason": "deadline",
                              "digest": request.digest})
                return
            self.breaker.record_failure()
            self.observer.counter(f"serve.pool_failures.{failure.kind}")
            self._answer(
                request, 500,
                {"error": "simulation_failed", "reason": failure.kind,
                 "kind": failure.kind, "attempts": failure.attempts,
                 "detail": str(failure), "digest": request.digest})
            return
        self.breaker.record_success()
        self.cache.put(request.digest, payload)
        with self._lock:
            self._recovery_pending.discard(request.digest)
        self._answer(request, 200, {"digest": request.digest,
                                    "cached": False, "result": payload})

    # ------------------------------------------------------------------
    # Introspection: /stats, /metrics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._lock:
            status_counts = dict(sorted(self._status_counts.items()))
            active = self._active_dispatch
        return {
            "draining": self.drain.draining,
            "uptime_s": (0.0 if self._started_at is None
                         else round(self._clock() - self._started_at, 3)),
            "responses": status_counts,
            "cache": self.cache.stats(),
            "queue": {
                "depth": self.queue.depth(),
                "capacity": self.queue.capacity,
                "watermark": self.queue.watermark,
                "admitted": self.queue.admitted_total,
                "shed": self.queue.shed_total,
                "evicted": self.queue.evicted_total,
            },
            "breaker": {
                "state": self.breaker.state,
                "transitions": self.breaker.transitions,
                "rejected": self.breaker.rejected_total,
            },
            "pool": {
                "workers": self.pool.workers,
                "busy": self.pool.busy,
                "active_dispatch": active,
                "executions": self.pool.executions,
                "retries": self.pool.retries,
                "rebuilds": self.pool.rebuilds,
                "failure_kinds": dict(sorted(
                    self.pool.failure_kinds.items())),
            },
            "drain": {
                "journaled": self._journaled,
                "journal": self.config.drain_journal,
            },
            "recovery": self.recovery_status,
        }

    def _fill_metrics(self, registry: MetricsRegistry) -> None:
        """Project the pipeline state into the PR 4 metrics registry.
        Called per scrape on a fresh registry, so plain ``inc`` by the
        current totals yields correct counter samples."""
        cache = self.cache.stats()
        lookups = registry.counter(
            "repro_serve_cache_lookups",
            "Result-cache lookups by outcome", ("outcome",))
        for outcome in ("hits", "misses", "corrupt"):
            lookups.inc(cache[outcome], outcome=outcome.rstrip("s")
                        if outcome != "misses" else "miss")
        registry.gauge("repro_serve_cache_hit_rate",
                       "Result-cache hit rate since start"
                       ).set(cache["hit_rate"])
        registry.gauge("repro_serve_queue_depth",
                       "Admission queue depth").set(self.queue.depth())
        shed = registry.counter("repro_serve_shed",
                                "Requests shed by admission control",
                                ("reason",))
        shed.inc(self.queue.shed_total - self.queue.evicted_total,
                 reason="queue_full")
        shed.inc(self.queue.evicted_total, reason="evicted")
        registry.gauge(
            "repro_serve_breaker_state",
            "Circuit breaker state (0=closed 1=half-open 2=open)"
        ).set(self.breaker.state_code)
        registry.counter("repro_serve_breaker_transitions",
                         "Circuit breaker state transitions"
                         ).inc(self.breaker.transitions)
        registry.counter("repro_serve_breaker_rejections",
                         "Requests rejected by the open breaker"
                         ).inc(self.breaker.rejected_total)
        busy = self.pool.busy
        registry.gauge("repro_serve_workers",
                       "Configured simulation worker processes"
                       ).set(self.pool.workers)
        registry.gauge("repro_serve_workers_busy",
                       "Simulation workers currently executing a trial"
                       ).set(busy)
        saturation = registry.gauge(
            "repro_serve_worker_saturation",
            "Per-worker-slot busy flag (1 = executing a trial)",
            ("worker",))
        for slot in range(self.pool.workers):
            saturation.set(1.0 if slot < busy else 0.0, worker=str(slot))
        registry.counter("repro_serve_pool_rebuilds",
                         "Worker-pool kill-and-rebuild events"
                         ).inc(self.pool.rebuilds)
        registry.counter("repro_serve_trial_retries",
                         "Trials re-run after a retryable failure"
                         ).inc(self.pool.retries)
        failures = registry.counter("repro_serve_pool_failures",
                                    "Trial attempt failures by kind",
                                    ("kind",))
        for kind, count in sorted(self.pool.failure_kinds.items()):
            failures.inc(count, kind=kind)
        registry.counter(
            "repro_serve_recovered_requests",
            "Requests replayed from the write-ahead log on warm restart"
        ).inc(self._recovered_total)
        with self._lock:
            recovery_pending = len(self._recovery_pending)
        registry.gauge(
            "repro_serve_recovery_pending",
            "Replayed requests whose results are not yet cached"
        ).set(recovery_pending)
        if self.request_log is not None:
            registry.counter(
                "repro_serve_wal_appends",
                "Requests journaled to the write-ahead log"
            ).inc(self.request_log.appended)
        responses = registry.counter("repro_serve_responses",
                                     "HTTP responses by status", ("code",))
        with self._lock:
            counts = dict(self._status_counts)
        by_code: dict[str, int] = {}
        for key, count in counts.items():
            code = key.split(":", 1)[0]
            by_code[code] = by_code.get(code, 0) + count
        for code, count in sorted(by_code.items()):
            responses.inc(count, code=code)

    def render_metrics(self) -> str:
        return snapshot_openmetrics(observer=self.observer,
                                    extra=self._fill_metrics)


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------


class _ServeHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    app: ServeApp


class _ServeHandler(BaseHTTPRequestHandler):
    """Thin translation between HTTP and :class:`ServeApp` methods."""

    server: _ServeHTTPServer
    protocol_version = "HTTP/1.1"

    # -- helpers -------------------------------------------------------

    def _respond_json(self, status: int, body: dict[str, Any],
                      headers: dict[str, str] | None = None) -> None:
        payload = (json.dumps(body, sort_keys=True,
                              separators=(",", ":")) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", JSON_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass    # client gave up; nothing to salvage

    # -- verbs ---------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path != "/simulate":
            self._respond_json(404, {"error": "not_found",
                                     "detail": "try POST /simulate"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            self._respond_json(413, {"error": "body_too_large",
                                     "limit": MAX_BODY_BYTES})
            return
        body = self.rfile.read(length) if length else b""
        status, payload, headers = self.server.app.handle_simulate(body)
        self._respond_json(status, payload, headers)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        app = self.server.app
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            try:
                body = app.render_metrics().encode("utf-8")
            except Exception as exc:  # pragma: no cover - defensive
                self._respond_json(500, {"error": "metrics_failed",
                                         "detail": str(exc)})
                return
            self.send_response(200)
            self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/healthz":
            status = 503 if app.drain.draining else 200
            self._respond_json(status, {
                "status": "draining" if app.drain.draining else "ok",
                "breaker": app.breaker.state,
                "recovery": app.recovery_status,
            })
        elif path == "/stats":
            self._respond_json(200, app.stats())
        elif path.startswith("/result/"):
            digest = path[len("/result/"):]
            try:
                payload = app.cache.get(digest)
            except ValueError:
                self._respond_json(400, {"error": "bad_digest"})
                return
            if payload is None:
                self._respond_json(404, {"error": "not_cached",
                                         "digest": digest})
            else:
                self._respond_json(200, {"digest": digest, "cached": True,
                                         "result": payload})
        else:
            self._respond_json(404, {
                "error": "not_found",
                "detail": "try /simulate, /metrics, /healthz, /stats"})

    def log_message(self, *args: Any) -> None:  # noqa: D102
        pass
