"""Campaign data model: trials, failures, outcomes, configuration.

A *trial* is one picklable unit of work — typically one seeded
simulation.  The engine executes trials serially or in worker processes,
and every way a trial can go wrong is folded into a structured
:class:`TrialFailure` instead of an exception that aborts the campaign
(mirroring how :class:`repro.faults.report.DegradationReport` records
kernel-level misbehavior instead of raising).

Failure taxonomy (``TrialFailure.kind``):

* ``"exception"`` — the trial function raised; deterministic, so it is
  **not** retried (re-running the same pure function cannot help);
* ``"transient"`` — the trial raised :class:`TransientTrialError`
  (or the chaos layer injected one); retried with backoff;
* ``"crash"`` — the worker process died (segfault, ``os._exit``, OOM
  kill); retried, because the cause is environmental, not the seed;
* ``"timeout"`` — the trial exceeded the per-trial wall-clock budget;
  retried, because long-tail schedules are usually scheduling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.campaign.chaos import ChaosPlan

#: Failure kinds that are worth retrying: the cause is environmental
#: (dead worker, stuck schedule) or explicitly marked transient, so a
#: fresh attempt with the same seed can legitimately succeed.
RETRYABLE_KINDS = frozenset({"transient", "crash", "timeout"})


class TransientTrialError(RuntimeError):
    """Raise from a trial function to mark the failure as retryable."""


class SimulatedWorkerCrash(RuntimeError):
    """Stand-in for a worker-process death when running serially (a real
    ``os._exit`` would take the whole campaign down — exactly what the
    serial mode cannot isolate)."""


@dataclass(frozen=True)
class TrialSpec:
    """One unit of campaign work.

    ``fn``/``args``/``kwargs`` must be picklable when the campaign runs
    with ``workers > 1`` (module-level functions and frozen dataclasses
    qualify; closures and lambdas do not).
    """

    index: int
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: tuple[tuple[str, Any], ...] = ()

    def call(self) -> Any:
        return self.fn(*self.args, **dict(self.kwargs))


@dataclass(frozen=True)
class TrialFailure:
    """One failed attempt of one trial."""

    index: int
    attempt: int                 # 0-based attempt number that failed
    kind: str                    # exception | transient | crash | timeout
    message: str = ""

    def __str__(self) -> str:
        detail = f": {self.message}" if self.message else ""
        return f"trial {self.index} attempt {self.attempt} {self.kind}{detail}"

    def to_dict(self) -> dict[str, Any]:
        return {"index": self.index, "attempt": self.attempt,
                "kind": self.kind, "message": self.message}


@dataclass
class TrialOutcome:
    """Terminal state of one trial: a value, or exhausted failures."""

    index: int
    ok: bool
    value: Any = None
    attempts: int = 0            # attempts actually executed this run
    failures: list[TrialFailure] = field(default_factory=list)
    from_journal: bool = False   # satisfied from a resume journal
    #: Wall-clock seconds of the successful attempt (submit-to-done under
    #: parallel execution); None for journal hits and failed trials.
    wall_s: float | None = None
    #: Checkpoint lineage for crash-recoverable trials: attempt records
    #: from the trial's CheckpointStore sidecar plus resume accounting
    #: (see DESIGN.md §15).  None when the trial did not checkpoint.
    recovery: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "index": self.index,
            "ok": self.ok,
            "attempts": self.attempts,
            "from_journal": self.from_journal,
            "failures": [f.to_dict() for f in self.failures],
            "wall_s": self.wall_s,
        }
        if self.recovery is not None:
            doc["recovery"] = self.recovery
        return doc


@dataclass(frozen=True)
class CampaignConfig:
    """Execution policy for a campaign (see DESIGN.md §9).

    ``workers=1`` (the default) runs trials in-process, in order — the
    byte-identical serial mode.  ``workers > 1`` fans trials out to a
    ``ProcessPoolExecutor``; ``timeout`` then bounds each trial's
    wall-clock time (it cannot be enforced in-process and is ignored
    serially).  ``max_attempts`` counts total tries per trial, so ``1``
    disables retry.  ``journal`` appends a write-ahead record per
    completed trial; ``resume`` preloads completed trials from a journal
    and skips re-running them.  ``metrics_port`` (when not None) makes
    the engine serve a live OpenMetrics ``/metrics`` endpoint for the
    duration of the campaign (0 = ephemeral port).
    """

    workers: int = 1
    timeout: float | None = None
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_cap: float = 2.0
    backoff_jitter: float = 0.25
    retry_seed: int = 0
    journal: str | None = None
    resume: str | None = None
    max_failures: int | None = None   # enforced by the CLI, recorded here
    chaos: "ChaosPlan | None" = None
    metrics_port: int | None = None   # live /metrics endpoint (0 = any)
    metrics_host: str = "127.0.0.1"
    #: Directory for per-trial kernel checkpoints.  When set, trial
    #: functions that declare ``wants_trial_context = True`` receive a
    #: ``_trial=`` :class:`repro.campaign.resume.TrialContext` and their
    #: crash/timeout retries resume from the last valid checkpoint
    #: instead of from zero (DESIGN.md §15).
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive when set")
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ValueError("metrics_port must be in [0, 65535] when set")


@dataclass(frozen=True)
class CampaignStats:
    """Aggregate campaign health, suitable for report annotations."""

    trials: int = 0
    completed: int = 0
    failed_trials: int = 0
    from_journal: int = 0
    attempt_failures: tuple[tuple[str, int], ...] = ()  # kind -> count
    workers: int = 1

    @property
    def total_attempt_failures(self) -> int:
        return sum(count for _, count in self.attempt_failures)

    def summary_line(self) -> str:
        parts = [f"{self.trials} trials", f"{self.completed} ok",
                 f"{self.failed_trials} failed"]
        if self.from_journal:
            parts.append(f"{self.from_journal} from journal")
        if self.attempt_failures:
            detail = ", ".join(f"{count} {kind}"
                               for kind, count in self.attempt_failures)
            parts.append(f"failed attempts: {detail}")
        parts.append(f"workers={self.workers}")
        return "; ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trials": self.trials,
            "completed": self.completed,
            "failed_trials": self.failed_trials,
            "from_journal": self.from_journal,
            "attempt_failures": dict(self.attempt_failures),
            "workers": self.workers,
        }


@dataclass
class CampaignResult:
    """Outcome of one batch of trials, in trial order."""

    outcomes: list[TrialOutcome] = field(default_factory=list)

    @property
    def values(self) -> list[Any]:
        """Successful trial values only, preserving trial order —
        the graceful-degradation view an aggregator consumes."""
        return [o.value for o in self.outcomes if o.ok]

    @property
    def failures(self) -> list[TrialFailure]:
        return [f for o in self.outcomes for f in o.failures]

    @property
    def failed(self) -> list[TrialOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failed
