"""Resilient campaign execution: crash isolation, timeouts, retry, resume.

:class:`CampaignEngine` runs batches of :class:`~repro.campaign.spec.TrialSpec`
under one :class:`~repro.campaign.spec.CampaignConfig`:

* ``workers=1`` — trials run in-process, in trial order.  With no
  journal, no chaos and no retries triggered, this is byte-identical to
  the plain serial loops the experiment modules used before the engine
  existed (same calls, same RNG consumption).
* ``workers>1`` — trials run in a ``concurrent.futures``
  ``ProcessPoolExecutor``.  A worker exception, a dead worker process,
  or a per-trial wall-clock timeout becomes a structured
  :class:`~repro.campaign.spec.TrialFailure`; retryable kinds re-enter
  the queue after a seeded exponential backoff.  A broken or stuck pool
  is killed and rebuilt; trials that were merely collateral (in flight
  on a pool another trial broke) are re-queued without being charged an
  attempt.

Determinism contract: trial functions must derive all randomness from
their arguments (in practice: from ``(base_seed, trial_index)``).  The
engine never feeds scheduling state into a trial, so serial, parallel,
retried and resumed campaigns agree on every successful trial's value.

One engine instance may serve several ``run()``/``map()`` batches (a
figure sweep issues one batch per x-axis point); trials are numbered
globally across batches so journals and chaos plans address them
unambiguously.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Sequence

from repro.campaign.journal import CampaignJournal, JournalError, load_journal
from repro.obs.observer import NULL_OBSERVER, NullObserver
from repro.campaign.seeding import backoff_delay, derive_seed
from repro.campaign.spec import (
    RETRYABLE_KINDS,
    CampaignConfig,
    CampaignResult,
    CampaignStats,
    SimulatedWorkerCrash,
    TransientTrialError,
    TrialFailure,
    TrialOutcome,
    TrialSpec,
)


def _execute_trial(fn: Callable[..., Any], args: tuple,
                   kwargs: tuple[tuple[str, Any], ...],
                   chaos, index: int, attempt: int,
                   trial_context=None) -> Any:
    """Worker-side trial wrapper (module-level, hence picklable)."""
    if chaos is not None:
        chaos.fire(index, attempt, in_worker=True)
    call_kwargs = dict(kwargs)
    if trial_context is not None:
        call_kwargs["_trial"] = trial_context
    return fn(*args, **call_kwargs)


def _classify(exc: BaseException) -> str:
    if isinstance(exc, TransientTrialError):
        return "transient"
    if isinstance(exc, (SimulatedWorkerCrash, BrokenProcessPool)):
        return "crash"
    return "exception"


class CampaignEngine:
    """Executes trials under one campaign policy; accumulates stats."""

    def __init__(self, config: CampaignConfig | None = None, *,
                 tag: str = "campaign",
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 observer: NullObserver | None = None) -> None:
        self.config = config or CampaignConfig()
        self.tag = tag
        self._clock = clock
        self._sleep = sleep
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._next_index = 0
        self.outcomes: list[TrialOutcome] = []
        self._cache: dict[int, Any] = {}
        if self.config.resume:
            snapshot = load_journal(self.config.resume)
            if snapshot.tag and snapshot.tag != tag:
                raise JournalError(
                    f"cannot resume: journal is for campaign "
                    f"{snapshot.tag!r}, this one is {tag!r}")
            self._cache = dict(snapshot.values)
        self._journal: CampaignJournal | None = None
        if self.config.journal:
            self._journal = CampaignJournal.open(self.config.journal, tag)
        # Live OpenMetrics endpoint: scrapes snapshot the observer on
        # demand, so the campaign stays scrapeable for its whole run.
        self._metrics_server = None
        if self.config.metrics_port is not None:
            from repro.obs.metrics import MetricsServer, snapshot_openmetrics

            self._metrics_server = MetricsServer(
                lambda: snapshot_openmetrics(observer=self.obs),
                host=self.config.metrics_host,
                port=self.config.metrics_port).start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, specs: Sequence[TrialSpec]) -> CampaignResult:
        """Execute one batch; returns outcomes in batch order."""
        base = self._next_index
        self._next_index += len(specs)
        if self.config.workers <= 1:
            outcomes = self._run_serial(specs, base)
        else:
            outcomes = self._run_parallel(specs, base)
        self.outcomes.extend(outcomes)
        return CampaignResult(outcomes=outcomes)

    def map(self, fn: Callable[..., Any],
            arg_tuples: Sequence[tuple], **kwargs: Any) -> CampaignResult:
        """Convenience: one trial per argument tuple."""
        specs = [
            TrialSpec(index=i, fn=fn, args=tuple(args),
                      kwargs=tuple(sorted(kwargs.items())))
            for i, args in enumerate(arg_tuples)
        ]
        return self.run(specs)

    def stats(self) -> CampaignStats:
        by_kind: dict[str, int] = {}
        for outcome in self.outcomes:
            for failure in outcome.failures:
                by_kind[failure.kind] = by_kind.get(failure.kind, 0) + 1
        return CampaignStats(
            trials=len(self.outcomes),
            completed=sum(1 for o in self.outcomes if o.ok),
            failed_trials=sum(1 for o in self.outcomes if not o.ok),
            from_journal=sum(1 for o in self.outcomes if o.from_journal),
            attempt_failures=tuple(sorted(by_kind.items())),
            workers=self.config.workers,
        )

    @property
    def metrics_url(self) -> str | None:
        """The live ``/metrics`` URL, when the campaign serves one."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.url

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _cached_outcome(self, gidx: int) -> TrialOutcome | None:
        if gidx not in self._cache:
            return None
        return TrialOutcome(index=gidx, ok=True, value=self._cache[gidx],
                            attempts=0, from_journal=True)

    def _checkpoint(self, outcome: TrialOutcome) -> None:
        if self._journal is not None and not outcome.from_journal:
            self._journal.record(outcome)
            self.obs.counter("campaign.journal_writes")

    def _note_outcome(self, outcome: TrialOutcome) -> None:
        if not self.obs.enabled:
            return
        self.obs.counter("campaign.trials")
        self.obs.counter("campaign.ok" if outcome.ok
                         else "campaign.failed")
        if outcome.from_journal:
            self.obs.counter("campaign.from_journal")
        if outcome.wall_s is not None:
            self.obs.histogram("campaign.trial_wall_s", outcome.wall_s)
        for failure in outcome.failures:
            self.obs.counter(f"campaign.attempt_failures.{failure.kind}")

    def _backoff(self, gidx: int, attempt: int) -> float:
        cfg = self.config
        delay = backoff_delay(
            attempt,
            base=cfg.backoff_base, factor=cfg.backoff_factor,
            cap=cfg.backoff_cap, jitter=cfg.backoff_jitter,
            seed=derive_seed(cfg.retry_seed, gidx, f"backoff:{attempt}"),
        )
        if self.obs.enabled:
            self.obs.counter("campaign.retries")
            self.obs.histogram("campaign.backoff_s", delay)
        return delay

    def _may_retry(self, kind: str, attempts: int) -> bool:
        return kind in RETRYABLE_KINDS and attempts < self.config.max_attempts

    def _trial_context(self, spec: TrialSpec, gidx: int, attempt: int):
        """A :class:`~repro.campaign.resume.TrialContext` for this
        attempt, or None when the trial does not checkpoint (no
        ``checkpoint_dir``, or the function never asked for one)."""
        if not self.config.checkpoint_dir:
            return None
        if not getattr(spec.fn, "wants_trial_context", False):
            return None
        from repro.campaign.resume import TrialContext

        return TrialContext(index=gidx, attempt=attempt,
                            checkpoint_dir=self.config.checkpoint_dir)

    def _recovery_info(self, spec: TrialSpec,
                       gidx: int) -> dict[str, Any] | None:
        """Summarize the trial's checkpoint lineage for the outcome and
        journal; projects the recovery counters into the observer."""
        if self._trial_context(spec, gidx, 0) is None:
            return None
        from repro.campaign.resume import CheckpointStore

        lineage = CheckpointStore(self.config.checkpoint_dir).lineage(gidx)
        if not lineage:
            return None
        resumed = [e for e in lineage if e.get("resumed")]
        written = sum(e.get("checkpoints_written", 0)
                      for e in lineage if e.get("completed"))
        saved = sum(e.get("resume_clock") or 0 for e in resumed)
        if self.obs.enabled:
            if written:
                self.obs.counter("campaign.checkpoints_written", written)
            if resumed:
                self.obs.counter("campaign.resumed_trials")
                self.obs.counter("campaign.resume_simns_saved", saved)
        return {
            "lineage": lineage,
            "resumed_attempts": len(resumed),
            "checkpoints_written": written,
            "resume_simns_saved": saved,
        }

    # ------------------------------------------------------------------
    # Serial execution
    # ------------------------------------------------------------------

    def _run_serial(self, specs: Sequence[TrialSpec],
                    base: int) -> list[TrialOutcome]:
        outcomes = []
        for position, spec in enumerate(specs):
            gidx = base + position
            cached = self._cached_outcome(gidx)
            if cached is not None:
                self._note_outcome(cached)
                outcomes.append(cached)
                continue
            outcome = self._run_one_serial(spec, gidx)
            self._checkpoint(outcome)
            self._note_outcome(outcome)
            outcomes.append(outcome)
        return outcomes

    def _run_one_serial(self, spec: TrialSpec, gidx: int) -> TrialOutcome:
        failures: list[TrialFailure] = []
        attempt = 0
        while True:
            try:
                if self.config.chaos is not None:
                    self.config.chaos.fire(gidx, attempt, in_worker=False)
                started = self._clock()
                context = self._trial_context(spec, gidx, attempt)
                if context is not None:
                    value = spec.fn(*spec.args, **dict(spec.kwargs),
                                    _trial=context)
                else:
                    value = spec.call()
                return TrialOutcome(index=gidx, ok=True, value=value,
                                    attempts=attempt + 1, failures=failures,
                                    wall_s=self._clock() - started,
                                    recovery=self._recovery_info(spec, gidx))
            except Exception as exc:
                kind = _classify(exc)
                failures.append(TrialFailure(index=gidx, attempt=attempt,
                                             kind=kind, message=str(exc)))
                attempt += 1
                if not self._may_retry(kind, attempt):
                    return TrialOutcome(index=gidx, ok=False,
                                        attempts=attempt, failures=failures,
                                        recovery=self._recovery_info(
                                            spec, gidx))
                self._sleep(self._backoff(gidx, attempt - 1))

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------

    def _new_executor(self) -> ProcessPoolExecutor:
        # Prefer fork where available: trial functions defined in test
        # modules and dynamically-built specs stay picklable-by-reference
        # and workers skip re-import.  Falls back to the platform default.
        try:
            context = get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = get_context()
        return ProcessPoolExecutor(max_workers=self.config.workers,
                                   mp_context=context)

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Terminate a pool whose workers may be stuck or dead.  Workers
        are killed first so ``shutdown`` cannot block on a hung trial."""
        for process in list(getattr(executor, "_processes", {}).values()):
            try:
                process.terminate()
            except (OSError, AttributeError):  # pragma: no cover
                pass
        executor.shutdown(wait=True, cancel_futures=True)

    def _run_parallel(self, specs: Sequence[TrialSpec],
                      base: int) -> list[TrialOutcome]:
        chaos = self.config.chaos
        timeout = self.config.timeout
        done: dict[int, TrialOutcome] = {}
        attempts: dict[int, int] = {}
        failures: dict[int, list[TrialFailure]] = {}
        by_index: dict[int, TrialSpec] = {}
        ready: list[tuple[float, int]] = []      # (not_before, gidx)
        for position, spec in enumerate(specs):
            gidx = base + position
            by_index[gidx] = spec
            cached = self._cached_outcome(gidx)
            if cached is not None:
                self._note_outcome(cached)
                done[gidx] = cached
            else:
                attempts[gidx] = 0
                failures[gidx] = []
                ready.append((0.0, gidx))
        ready.sort()

        executor: ProcessPoolExecutor | None = None
        # Future -> (gidx, deadline, submit time).
        running: dict[Future, tuple[int, float | None, float]] = {}

        def finalize(gidx: int, ok: bool, value: Any = None,
                     wall_s: float | None = None) -> None:
            outcome = TrialOutcome(index=gidx, ok=ok, value=value,
                                   attempts=attempts[gidx],
                                   failures=failures[gidx],
                                   wall_s=wall_s,
                                   recovery=self._recovery_info(
                                       by_index[gidx], gidx))
            self._checkpoint(outcome)
            self._note_outcome(outcome)
            done[gidx] = outcome

        def fail(gidx: int, kind: str, message: str) -> None:
            attempt = attempts[gidx]
            failures[gidx].append(TrialFailure(index=gidx, attempt=attempt,
                                               kind=kind, message=message))
            attempts[gidx] = attempt + 1
            if self._may_retry(kind, attempts[gidx]):
                delay = self._backoff(gidx, attempt)
                ready.append((self._clock() + delay, gidx))
                ready.sort()
            else:
                finalize(gidx, ok=False)

        def requeue_collateral() -> None:
            """Re-queue in-flight trials after a pool kill, uncharged."""
            for future, (gidx, _, _) in list(running.items()):
                if gidx in done or any(g == gidx for _, g in ready):
                    continue
                ready.append((self._clock(), gidx))
            ready.sort()
            running.clear()

        try:
            while ready or running:
                now = self._clock()
                # Submit every due trial for which a worker slot is free.
                while ready and ready[0][0] <= now and \
                        len(running) < self.config.workers:
                    _, gidx = ready.pop(0)
                    if executor is None:
                        executor = self._new_executor()
                    spec = by_index[gidx]
                    future = executor.submit(
                        _execute_trial, spec.fn, spec.args, spec.kwargs,
                        chaos, gidx, attempts[gidx],
                        self._trial_context(spec, gidx, attempts[gidx]))
                    deadline = None if timeout is None else now + timeout
                    running[future] = (gidx, deadline, self._clock())
                if self.obs.enabled:
                    self.obs.histogram("campaign.workers_busy", len(running))
                if not running:
                    # Everything pending is backing off; sleep it out.
                    if ready:
                        self._sleep(max(0.0, ready[0][0] - self._clock()))
                    continue

                waits = [deadline - now
                         for _, deadline, _ in running.values()
                         if deadline is not None]
                if len(running) < self.config.workers:
                    waits += [not_before - now for not_before, _ in ready]
                wait_timeout = max(0.0, min(waits)) if waits else None
                completed = wait(running.keys(), timeout=wait_timeout,
                                 return_when=FIRST_COMPLETED).done

                pool_broken = False
                for future in completed:
                    gidx, _, started = running.pop(future)
                    exc = future.exception()
                    if exc is None:
                        attempts[gidx] += 1
                        finalize(gidx, ok=True, value=future.result(),
                                 wall_s=self._clock() - started)
                    else:
                        kind = _classify(exc)
                        if kind == "crash":
                            pool_broken = True
                        fail(gidx, kind, f"{type(exc).__name__}: {exc}")

                now = self._clock()
                expired = [future
                           for future, (_, deadline, _) in running.items()
                           if deadline is not None and now >= deadline]
                for future in expired:
                    gidx, _, _ = running.pop(future)
                    fail(gidx, "timeout",
                         f"trial exceeded {timeout:.3g}s wall-clock budget")

                if pool_broken or expired:
                    # The pool has dead or stuck workers; kill it and let
                    # the still-healthy in-flight trials re-run free of
                    # charge on a fresh pool.
                    if executor is not None:
                        self._kill_executor(executor)
                        executor = None
                    requeue_collateral()
        finally:
            if executor is not None:
                executor.shutdown(wait=True, cancel_futures=True)

        return [done[base + position] for position in range(len(specs))]
