"""Crash-safe artifact writes.

Every campaign artifact — figure tables under ``benchmarks/out/``,
degradation reports, JSON summaries, journal headers — goes through
:func:`atomic_write`: the payload lands in a temporary file in the target
directory, is flushed and fsynced, and is then moved over the destination
with :func:`os.replace`.  An interrupt (SIGKILL, power loss, a crashed
worker) therefore leaves either the previous artifact or the new one,
never a truncated hybrid.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write(path: str | os.PathLike, data: str | bytes, *,
                 encoding: str = "utf-8") -> Path:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename).

    Parent directories are created as needed.  Returns the final path.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = data.encode(encoding) if isinstance(data, str) else data
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=target.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(target.parent)
    return target


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)
