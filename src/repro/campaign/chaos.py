"""Campaign-layer fault injection.

PR 1 gave the simulated kernel a seeded fault plan; this is the same idea
one layer up.  A :class:`ChaosPlan` rides inside the (picklable)
:class:`repro.campaign.spec.CampaignConfig` and fires *inside the trial
wrapper*, before the real trial function runs:

* ``crash`` — the worker process dies via ``os._exit`` (serially, a
  :class:`~repro.campaign.spec.SimulatedWorkerCrash` is raised instead,
  since a real exit would not be isolated);
* ``kill9`` — the worker sends itself a real, unhandled ``SIGKILL``
  (the harshest death the OS offers: no atexit hooks, no buffered-IO
  flush; serially it degrades to the same simulated crash as ``crash``);
* ``hang`` — the wrapper sleeps past the campaign's per-trial timeout;
* ``transient`` — a :class:`~repro.campaign.spec.TransientTrialError`
  is raised.

Faults fire only on ``on_attempt`` (default: the first attempt), so a
retrying engine recovers and the campaign's *results* stay identical to
a fault-free run — which is exactly the property the integration tests
assert.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

from repro.campaign.spec import SimulatedWorkerCrash, TransientTrialError


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic campaign-layer faults, keyed by global trial index."""

    crash: tuple[int, ...] = ()
    kill9: tuple[int, ...] = ()
    hang: tuple[int, ...] = ()
    transient: tuple[int, ...] = ()
    hang_seconds: float = 60.0
    on_attempt: int = 0

    @property
    def empty(self) -> bool:
        return not (self.crash or self.kill9 or self.hang or self.transient)

    def fire(self, index: int, attempt: int, *, in_worker: bool) -> None:
        """Inject the planned fault for ``(index, attempt)``, if any."""
        if attempt != self.on_attempt:
            return
        if index in self.kill9:
            if in_worker:
                os.kill(os.getpid(), signal.SIGKILL)
            raise SimulatedWorkerCrash(
                f"chaos: injected kill -9 in trial {index}")
        if index in self.crash:
            if in_worker:
                os._exit(13)     # simulate a hard worker death
            raise SimulatedWorkerCrash(
                f"chaos: injected crash in trial {index}")
        if index in self.transient:
            raise TransientTrialError(
                f"chaos: injected transient failure in trial {index}")
        if index in self.hang:
            # Sleep long enough for the engine's timeout to fire; the
            # trial then completes normally, but its abandoned result is
            # discarded with the killed worker pool.
            time.sleep(self.hang_seconds)
