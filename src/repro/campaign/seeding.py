"""Deterministic seed derivation and retry backoff.

The campaign determinism contract (DESIGN.md §9) requires every trial's
RNG stream to be a pure function of ``(base_seed, trial_index)`` — never
of execution order, worker assignment, or wall-clock time.  That is what
lets a ``--workers 8`` campaign, a serial campaign, and a ``--resume``d
campaign produce identical results.

:func:`derive_seed` hashes the pair (plus an optional stream label) with
SHA-256, which is stable across Python versions and platforms — unlike
``hash()``, which is salted per process.

Retry backoff is seeded the same way: the jitter for attempt ``a`` of
trial ``i`` comes from ``derive_seed(retry_seed, i, "backoff:a")``, so a
re-run of a flaky campaign sleeps the same schedule.
"""

from __future__ import annotations

import hashlib
import random

_SEED_BYTES = 8


def derive_seed(base_seed: int, trial_index: int, stream: str = "") -> int:
    """A 64-bit seed that is a pure function of its arguments."""
    text = f"{base_seed}:{trial_index}:{stream}".encode("utf-8")
    digest = hashlib.sha256(text).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def derive_seeds(base_seed: int, count: int, stream: str = "") -> list[int]:
    """``count`` independent per-trial seeds from one base seed."""
    return [derive_seed(base_seed, index, stream) for index in range(count)]


def backoff_delay(attempt: int, *, base: float, factor: float, cap: float,
                  jitter: float, seed: int) -> float:
    """Exponential backoff with seeded, symmetric jitter (seconds).

    ``attempt`` is 0-based (the delay before retry ``attempt + 1``).  The
    undithered delay is ``min(cap, base * factor**attempt)``; jitter
    scales it by a factor drawn uniformly from ``[1 - jitter, 1 + jitter]``
    using ``seed`` alone, so the schedule is reproducible.
    """
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    if base < 0 or cap < 0:
        raise ValueError("backoff base/cap must be non-negative")
    if factor < 1.0:
        raise ValueError("backoff factor must be at least 1")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError("jitter must be within [0, 1]")
    raw = min(cap, base * factor ** attempt)
    if jitter == 0.0 or raw == 0.0:
        return raw
    unit = random.Random(seed).random()          # deterministic in seed
    return raw * (1.0 + jitter * (2.0 * unit - 1.0))
