"""Write-ahead campaign journal: append-only JSONL checkpoints.

Every completed trial is recorded as one JSON line carrying the trial's
global index and its pickled value (base64, so the journal stays a text
file).  The header line pins a ``tag`` — a fingerprint of the campaign
(command, figure, base seed) — so a journal cannot silently be resumed
into a different campaign.

Durability model:

* the header is created atomically (:func:`repro.campaign.io.atomic_write`)
  and :meth:`CampaignJournal.open` always fsyncs the parent directory, so
  the journal's very existence survives a crash immediately after open;
* each record append is flushed and fsynced before the engine considers
  the trial checkpointed (write-ahead: the journal entry lands before
  the result is surfaced to aggregation);
* a torn trailing line — the signature of a mid-write kill — is detected
  and ignored on load, so ``--resume`` after a crash just re-runs the
  trial whose record was cut short.

Because every trial's RNG stream depends only on ``(base_seed,
trial_index)`` (DESIGN.md §9), a resumed campaign reproduces the
uninterrupted campaign exactly: journaled trials are replayed from disk
and the rest are recomputed from their own seeds.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.campaign.io import _fsync_dir, atomic_write
from repro.campaign.spec import TrialFailure, TrialOutcome

_VERSION = 1


class JournalError(RuntimeError):
    """Unusable journal: bad header, or tag mismatch on resume."""


@dataclass
class JournalSnapshot:
    """Parsed journal contents: completed values plus failure records."""

    tag: str = ""
    values: dict[int, Any] = field(default_factory=dict)
    failed: dict[int, list[TrialFailure]] = field(default_factory=dict)
    torn_lines: int = 0

    @property
    def completed(self) -> int:
        return len(self.values)


def _encode_value(value: Any) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode_value(payload: str) -> Any:
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


class CampaignJournal:
    """Append-side of the journal.  Open via :meth:`open`, feed it
    terminal :class:`TrialOutcome`\\ s via :meth:`record`."""

    def __init__(self, path: Path, handle) -> None:
        self.path = path
        self._handle = handle

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @classmethod
    def open(cls, path: str | os.PathLike, tag: str) -> "CampaignJournal":
        """Open ``path`` for appending, creating it (atomically, header
        first) when absent.  An existing journal must carry the same
        ``tag``; appending to a journal from a different campaign is an
        error, not a silent corruption."""
        target = Path(path)
        reheader = False
        if target.exists() and target.stat().st_size > 0:
            snapshot = load_journal(target)
            if snapshot.tag and snapshot.tag != tag:
                raise JournalError(
                    f"journal {target} belongs to campaign "
                    f"{snapshot.tag!r}, not {tag!r}")
            # A headerless journal (the tag line itself was lost to a
            # torn write) is re-pinned: append a fresh header so later
            # resumes get their tag check back.
            reheader = not snapshot.tag
        else:
            header = json.dumps({"type": "header", "version": _VERSION,
                                 "tag": tag}, sort_keys=True)
            atomic_write(target, header + "\n")
        handle = open(target, "a", encoding="utf-8")
        # A mid-write kill can leave a torn final line with no newline;
        # appending straight after it would glue the next record onto
        # the torn prefix and lose it.  Terminate the torn line so it
        # stays its own (ignored) line.
        repaired = False
        if target.stat().st_size > 0:
            with open(target, "rb") as check:
                check.seek(-1, os.SEEK_END)
                if check.read(1) != b"\n":
                    handle.write("\n")
                    handle.flush()
                    repaired = True
        if reheader:
            handle.write(json.dumps({"type": "header", "version": _VERSION,
                                     "tag": tag}, sort_keys=True) + "\n")
            handle.flush()
            repaired = True
        if repaired:
            os.fsync(handle.fileno())
        # The rename in atomic_write fsyncs the directory for the
        # *creation* path, but the repair paths above mutate an existing
        # file whose directory entry may still be unjournaled (e.g. the
        # journal itself survived a crash that its directory did not).
        # Pin the entry before any trial record depends on it.
        _fsync_dir(target.parent)
        return cls(target, handle)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def record(self, outcome: TrialOutcome) -> None:
        """Append one terminal trial outcome, write-ahead durable."""
        entry: dict[str, Any] = {
            "type": "trial",
            "index": outcome.index,
            "ok": outcome.ok,
            "attempts": outcome.attempts,
            "failures": [f.to_dict() for f in outcome.failures],
        }
        if outcome.recovery is not None:
            entry["recovery"] = outcome.recovery
        if outcome.ok:
            entry["payload"] = _encode_value(outcome.value)
        line = json.dumps(entry, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------

def load_journal(path: str | os.PathLike) -> JournalSnapshot:
    """Parse a journal, tolerating torn lines.

    A torn trailing record — the signature of a mid-write kill — is
    counted and skipped.  A journal whose *header* line is also gone
    (killed during creation, before any record decoded) loads as an
    empty snapshot with ``tag == ""`` so ``--resume`` starts cleanly
    instead of raising.  Decodable trial records with no header are
    corruption, not interruption, and still raise
    :class:`JournalError` (the tag cannot be trusted).
    """
    target = Path(path)
    snapshot = JournalSnapshot()
    try:
        with open(target, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError as exc:
        raise JournalError(f"journal {target} does not exist") from exc
    if not lines:
        raise JournalError(f"journal {target} is empty")
    have_header = False
    for line in lines:
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            kind = entry.get("type")
            if kind == "header":
                if have_header:
                    continue          # only the first header pins the tag
                if entry.get("version") != _VERSION:
                    raise JournalError(
                        f"journal {target} has unsupported version "
                        f"{entry.get('version')!r}")
                snapshot.tag = entry.get("tag", "")
                have_header = True
                continue
            if kind != "trial":
                continue
            index = int(entry["index"])
            if entry.get("ok"):
                snapshot.values[index] = _decode_value(entry["payload"])
                snapshot.failed.pop(index, None)
            else:
                snapshot.failed[index] = [
                    TrialFailure(**f) for f in entry.get("failures", [])
                ]
        except JournalError:
            raise
        except (json.JSONDecodeError, KeyError, ValueError, TypeError,
                pickle.UnpicklingError, EOFError):
            # A torn line is only legitimate where a mid-write kill cut
            # it (typically the tail — or the header itself, when the
            # kill landed during journal creation); just count it and
            # move on.
            snapshot.torn_lines += 1
    if not have_header and (snapshot.values or snapshot.failed):
        # Decodable trial records but no header: that is corruption (or
        # a foreign file), not a torn write — refuse to guess the tag.
        raise JournalError(f"journal {target} has no valid header")
    return snapshot
