"""Sub-trial resume: per-trial kernel checkpoints for campaign retries.

PR 2's retry path restarts a crashed, timed-out or transiently failed
trial *from seed zero*.  This module lets a resumable trial function
persist mid-run :class:`~repro.sim.checkpoint.KernelCheckpoint`\\ s under
a per-trial path, so the retry resumes from the last valid checkpoint
instead — with the PR 5 equivalence guarantee that the resumed result is
byte-identical to an uninterrupted run.

Pieces:

* :class:`CheckpointStore` — durable per-trial-index checkpoint files
  (``trial-<gidx>.ckpt.json``), written with
  :func:`~repro.campaign.io.atomic_write` so a mid-write kill can never
  tear one.  A corrupt or tampered checkpoint is **quarantined** (moved
  aside for post-mortem, like the serve result cache) and reported as
  absent, so the retry falls back to from-zero instead of trusting it.
  The store also keeps a per-trial *lineage* sidecar recording every
  attempt — whether it resumed, from which simulated clock, how many
  checkpoints it wrote — which the engine folds into the journal.
* :class:`TrialContext` — the frozen, picklable handle the engine
  injects (keyword ``_trial=``) into trial functions that declare
  ``wants_trial_context = True``.
* :func:`simulate_scenario_trial` — the canonical resumable trial: runs
  one wire-format :class:`~repro.scenario.Scenario` to the same
  canonical result payload the serve layer caches, checkpointing as it
  goes.  Its crash knobs (``crash_after_checkpoints``) let tests and the
  recovery harness kill a worker with real ``SIGKILL`` mid-trial.

Recovery metadata never enters the trial's *value* — the payload stays
a pure function of the scenario, so resumed and from-zero campaigns
byte-compare equal and the serve ``--verify`` contract holds.
"""

from __future__ import annotations

import json
import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign.io import atomic_write
from repro.sim.checkpoint import (
    CheckpointError,
    CheckpointPolicy,
    KernelCheckpoint,
)

__all__ = ["CheckpointStore", "TrialContext", "simulate_scenario_trial"]


@dataclass(frozen=True)
class TrialContext:
    """What a resumable trial needs to know about its execution slot."""

    index: int              # global trial index (stable across retries)
    attempt: int            # 0-based attempt number of this execution
    checkpoint_dir: str     # CheckpointStore root


class CheckpointStore:
    """Per-trial checkpoint + lineage files under one directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def checkpoint_path(self, index: int) -> Path:
        return self.root / f"trial-{index}.ckpt.json"

    def lineage_path(self, index: int) -> Path:
        return self.root / f"trial-{index}.lineage.json"

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------

    def save(self, index: int, checkpoint: KernelCheckpoint) -> None:
        """Durably persist the trial's latest checkpoint (atomic
        replace; a ``kill -9`` leaves either the previous checkpoint or
        the complete new one, never a torn hybrid)."""
        atomic_write(self.checkpoint_path(index),
                     checkpoint.to_json() + "\n")

    def load(self, index: int) -> KernelCheckpoint | None:
        """The trial's last *valid* checkpoint, or None.

        A checkpoint that fails decode or digest verification is moved
        to ``<name>.quarantined[.n]`` and reported as absent — the
        caller restarts from zero rather than resuming corrupt state.
        """
        path = self.checkpoint_path(index)
        try:
            text = path.read_text(encoding="utf-8")
        except (FileNotFoundError, NotADirectoryError):
            return None
        except OSError:
            self._quarantine(path)
            return None
        try:
            return KernelCheckpoint.from_json(text)
        except CheckpointError:
            self._quarantine(path)
            return None

    def clear(self, index: int) -> None:
        """Drop the trial's checkpoint (called on success; the lineage
        sidecar is kept as the journal's evidence trail)."""
        try:
            self.checkpoint_path(index).unlink(missing_ok=True)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass

    def _quarantine(self, path: Path) -> None:
        target = path.with_name(path.name + ".quarantined")
        suffix = 0
        while target.exists():
            suffix += 1
            target = path.with_name(f"{path.name}.quarantined.{suffix}")
        try:
            os.replace(path, target)
        except OSError:
            try:
                path.unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort
                pass

    def quarantined(self) -> list[Path]:
        try:
            return sorted(p for p in self.root.iterdir()
                          if ".quarantined" in p.name)
        except (FileNotFoundError, NotADirectoryError):
            return []

    # ------------------------------------------------------------------
    # Lineage
    # ------------------------------------------------------------------

    def note_attempt(self, index: int, entry: dict[str, Any]) -> None:
        """Append one attempt record to the trial's lineage sidecar."""
        lineage = self.lineage(index)
        lineage.append(entry)
        atomic_write(self.lineage_path(index),
                     json.dumps(lineage, sort_keys=True) + "\n")

    def lineage(self, index: int) -> list[dict[str, Any]]:
        try:
            doc = json.loads(
                self.lineage_path(index).read_text(encoding="utf-8"))
        except (FileNotFoundError, NotADirectoryError):
            return []
        except (OSError, json.JSONDecodeError):
            return []
        return doc if isinstance(doc, list) else []


def simulate_scenario_trial(scenario_dict: dict[str, Any],
                            every_events: int = 200,
                            crash_after_checkpoints: int | None = None,
                            crash_on_attempt: int = 0,
                            _trial: TrialContext | None = None
                            ) -> dict[str, Any]:
    """Run one wire-format Scenario as a crash-recoverable trial.

    Returns the canonical result payload (the exact dict the serve layer
    caches), a pure function of the scenario — resumed or not.  When the
    engine injects a :class:`TrialContext` (``CampaignConfig
    .checkpoint_dir`` is set), the trial resumes from its last valid
    checkpoint and persists fresh checkpoints every ``every_events``
    kernel events.

    ``crash_after_checkpoints`` (test/harness hook): on attempt
    ``crash_on_attempt``, the process SIGKILLs itself after that many
    checkpoints have been durably written — a real, unhandled worker
    death mid-trial.
    """
    from repro.api import simulate
    from repro.scenario import Scenario
    from repro.serve.pool import result_payload

    scenario = Scenario.from_dict(scenario_dict)
    if _trial is None:
        return result_payload(scenario, simulate(scenario))

    store = CheckpointStore(_trial.checkpoint_dir)
    resume_from = store.load(_trial.index)
    store.note_attempt(_trial.index, {
        "attempt": _trial.attempt,
        "resumed": resume_from is not None,
        "resume_clock": None if resume_from is None else resume_from.clock,
        "resume_events": (None if resume_from is None
                          else resume_from.events_handled),
    })
    written = 0

    def sink(checkpoint: KernelCheckpoint) -> None:
        nonlocal written
        store.save(_trial.index, checkpoint)
        written += 1
        if (crash_after_checkpoints is not None
                and _trial.attempt == crash_on_attempt
                and written >= crash_after_checkpoints):
            os.kill(os.getpid(), signal.SIGKILL)

    summary = simulate(scenario,
                       checkpoints=CheckpointPolicy(
                           every_events=every_events),
                       checkpoint_sink=sink,
                       resume_from=resume_from)
    store.note_attempt(_trial.index, {
        "attempt": _trial.attempt,
        "completed": True,
        "checkpoints_written": written,
    })
    store.clear(_trial.index)
    return result_payload(scenario, summary)


#: The engine injects ``_trial=`` into functions carrying this marker.
simulate_scenario_trial.wants_trial_context = True
