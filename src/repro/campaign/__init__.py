"""Resilient parallel campaign engine (DESIGN.md §9).

Every experiment entry point — :func:`repro.experiments.runner.run_many`,
the figure campaigns, the fault campaign, the benchmark harness and the
CLI — routes its seeded trials through :class:`CampaignEngine`, which
adds, on top of the plain serial loop:

* **crash isolation** — trials run in worker processes (``workers > 1``);
  a worker exception, timeout or dead process becomes a structured
  :class:`TrialFailure` in the campaign result instead of an abort;
* **per-trial timeouts** with seeded-deterministic retry + exponential
  backoff and jitter for transient failures;
* **checkpointed resume** — a write-ahead JSONL journal of completed
  trials lets an interrupted campaign continue exactly where it died,
  reproducing the uninterrupted run bit-for-bit because trial RNG
  streams depend only on ``(base_seed, trial_index)``;
* **atomic artifacts** — :func:`atomic_write` (temp file + fsync +
  ``os.replace``) so interrupts never leave truncated outputs.

``workers=1`` with no journal is byte-identical to the pre-engine serial
code paths; the resilience machinery is pay-for-what-you-use.
"""

from repro.campaign.chaos import ChaosPlan
from repro.campaign.engine import CampaignEngine
from repro.campaign.io import atomic_write
from repro.campaign.journal import CampaignJournal, JournalError, load_journal
from repro.campaign.resume import (
    CheckpointStore,
    TrialContext,
    simulate_scenario_trial,
)
from repro.campaign.seeding import backoff_delay, derive_seed, derive_seeds
from repro.campaign.spec import (
    RETRYABLE_KINDS,
    CampaignConfig,
    CampaignResult,
    CampaignStats,
    SimulatedWorkerCrash,
    TransientTrialError,
    TrialFailure,
    TrialOutcome,
    TrialSpec,
)


def as_engine(campaign: "CampaignConfig | CampaignEngine | None",
              tag: str = "campaign") -> "CampaignEngine | None":
    """Normalize the ``campaign=`` argument the experiment entry points
    accept: ``None`` stays ``None`` (plain serial path), a config is
    wrapped in a fresh engine, an engine is passed through."""
    if campaign is None or isinstance(campaign, CampaignEngine):
        return campaign
    if isinstance(campaign, CampaignConfig):
        return CampaignEngine(campaign, tag=tag)
    raise TypeError(
        f"campaign must be CampaignConfig, CampaignEngine or None, "
        f"not {type(campaign).__name__}")


__all__ = [
    "CampaignConfig",
    "CampaignEngine",
    "CampaignJournal",
    "CampaignResult",
    "CampaignStats",
    "ChaosPlan",
    "CheckpointStore",
    "JournalError",
    "RETRYABLE_KINDS",
    "SimulatedWorkerCrash",
    "TransientTrialError",
    "TrialContext",
    "TrialFailure",
    "TrialOutcome",
    "TrialSpec",
    "as_engine",
    "atomic_write",
    "backoff_delay",
    "derive_seed",
    "derive_seeds",
    "load_journal",
    "simulate_scenario_trial",
]
