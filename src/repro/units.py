"""Canonical time units.

All simulated times in this package are integer *nanoseconds*.  The paper
reports times in microseconds/milliseconds; use these constants to write
workloads in the paper's units::

    from repro.units import US, MS
    tuf = StepTUF(critical_time=50 * MS)
    body = (Compute(300 * US),)
"""

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns_to_us(t: int | float) -> float:
    """Convert nanoseconds to microseconds (for reporting)."""
    return t / US


def ns_to_ms(t: int | float) -> float:
    """Convert nanoseconds to milliseconds (for reporting)."""
    return t / MS
