"""Arrival-trace generators that are UAM-conformant by construction.

All generators produce sorted integer arrival times in ``[0, horizon)``.
Two structural tricks keep the traces exactly inside the UAM envelope:

* **Lower bound** — an evenly spaced grid with spacing ``W // l`` places
  exactly ``l`` arrivals in every half-open window of length ``W`` (the
  count of multiples of ``d`` in ``[t, t + l*d)`` is exactly ``l``), so the
  grid alone saturates the minimum.
* **Upper bound** — random extra arrivals are *thinned*: a candidate is
  dropped whenever accepting it would push the trailing-window count above
  ``a``.

Generators therefore never need rejection-resampling loops and every trace
they emit passes :func:`repro.arrivals.validate.check_uam`.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from collections import deque

from repro.arrivals.spec import UAMSpec


class ArrivalGenerator(ABC):
    """Produces one arrival trace per call, given an RNG and a horizon."""

    #: The UAM envelope the generated traces conform to.
    spec: UAMSpec

    @abstractmethod
    def generate(self, rng: random.Random, horizon: int) -> list[int]:
        """Return sorted arrival times in ``[0, horizon)``."""


def _lower_bound_grid(spec: UAMSpec, horizon: int, phase: int) -> list[int]:
    """W-periodic arrival pattern with exactly ``l`` arrivals per period.

    For any W-periodic point multiset with ``l`` points per period, every
    half-open window of length ``W`` contains exactly ``l`` points (each
    residue class contributes exactly one representative per window).  The
    grid therefore meets the UAM lower bound tightly and — because
    ``l <= a`` — can never break the upper bound on its own.
    """
    if spec.min_arrivals == 0:
        return []
    window = spec.window
    offsets = [
        (phase + (j * window) // spec.min_arrivals) % window
        for j in range(spec.min_arrivals)
    ]
    offsets.sort()
    times: list[int] = []
    base = 0
    while base < horizon:
        times.extend(base + off for off in offsets if base + off < horizon)
        base += window
    return times


class _ThinningWindow:
    """Trailing-window counter used to enforce the UAM upper bound."""

    def __init__(self, spec: UAMSpec) -> None:
        self._spec = spec
        self._recent: deque[int] = deque()

    def admits(self, t: int) -> bool:
        self._evict(t)
        return len(self._recent) < self._spec.max_arrivals

    def admit(self, t: int) -> None:
        self._evict(t)
        self._recent.append(t)

    def _evict(self, t: int) -> None:
        while self._recent and self._recent[0] <= t - self._spec.window:
            self._recent.popleft()


def _virtual_grid_prefix(spec: UAMSpec, phase: int) -> list[int]:
    """The lower-bound grid's points in ``(-W, 0)``, used to seed the
    thinning window.  Without them, extras near the start of the horizon
    see an artificially empty trailing window and can be admitted even
    though an upcoming grid point will push a sliding window over ``a``.
    """
    if spec.min_arrivals == 0:
        return []
    window = spec.window
    offsets = sorted(
        (phase + (j * window) // spec.min_arrivals) % window
        for j in range(spec.min_arrivals)
    )
    return [off - window for off in offsets]


def _merge_thin(grid: list[int], extras: list[int], spec: UAMSpec,
                preload: list[int] | None = None) -> list[int]:
    """Merge mandatory grid arrivals with optional extras, thinning the
    extras so the sliding max never exceeds ``a``.

    Grid points always win ties: they carry the lower-bound guarantee.
    Since the grid alone puts exactly ``l <= a`` arrivals in every window
    (including, via ``preload``, windows straddling time zero), admitting
    grid points unconditionally can never break the upper bound as long
    as extras are thinned against the combined count.
    """
    window = _ThinningWindow(spec)
    for t in preload or []:
        window.admit(t)
    out: list[int] = []
    gi = ei = 0
    while gi < len(grid) or ei < len(extras):
        take_grid = gi < len(grid) and (
            ei >= len(extras) or grid[gi] <= extras[ei]
        )
        if take_grid:
            t = grid[gi]
            gi += 1
            window.admit(t)
            out.append(t)
        else:
            t = extras[ei]
            ei += 1
            if window.admits(t):
                window.admit(t)
                out.append(t)
    return out


class PeriodicGenerator(ArrivalGenerator):
    """Strictly periodic arrivals — the UAM special case ``<1, 1, W>``.

    An optional bounded release ``jitter`` (at most ``period // 4``,
    enforced) makes the trace sporadic-like.  Jitter widens the honest UAM
    envelope: consecutive jittered releases can land as close as
    ``period - jitter`` apart or as far as ``period + jitter``, so the
    advertised spec becomes ``<0, 2, W>`` whenever ``jitter > 0`` and the
    exact ``<1, 1, W>`` otherwise.
    """

    def __init__(self, period: int, phase: int = 0, jitter: int = 0) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if not 0 <= jitter <= period // 4:
            raise ValueError("jitter must lie in [0, period // 4]")
        if phase < 0:
            raise ValueError("phase must be non-negative")
        if jitter > 0:
            self.spec = UAMSpec(min_arrivals=0, max_arrivals=2, window=period)
        else:
            self.spec = UAMSpec.periodic(period)
        self._period = period
        self._phase = phase
        self._jitter = jitter

    def generate(self, rng: random.Random, horizon: int) -> list[int]:
        times: list[int] = []
        t = self._phase
        while t < horizon:
            if self._jitter:
                jittered = t + rng.randint(0, self._jitter)
            else:
                jittered = t
            if jittered < horizon:
                times.append(jittered)
            t += self._period
        return times


class UniformUAMGenerator(ArrivalGenerator):
    """Random trace hugging the UAM envelope from both sides.

    A mandatory grid realizes the lower bound; extra arrivals are proposed
    uniformly at an average of ``burstiness * (a - l)`` per window and
    thinned against the upper bound.  ``burstiness = 1.0`` pushes the trace
    toward the maximum-rate envelope.
    """

    def __init__(self, spec: UAMSpec, burstiness: float = 0.5,
                 phase: int = 0) -> None:
        if not 0.0 <= burstiness <= 1.0:
            raise ValueError("burstiness must lie in [0, 1]")
        self.spec = spec
        self._burstiness = burstiness
        self._phase = phase

    def generate(self, rng: random.Random, horizon: int) -> list[int]:
        spec = self.spec
        grid = _lower_bound_grid(spec, horizon, self._phase)
        slack = spec.max_arrivals - spec.min_arrivals
        n_windows = math.ceil(horizon / spec.window)
        n_extras = round(self._burstiness * slack * n_windows)
        extras = sorted(rng.randrange(horizon) for _ in range(n_extras))
        preload = _virtual_grid_prefix(spec, self._phase)
        return _merge_thin(grid, extras, spec, preload=preload)


class BurstyUAMGenerator(ArrivalGenerator):
    """Adversarial trace: a burst of ``a`` simultaneous arrivals at the
    start of every window.

    This realizes the worst case used in the proof of Theorem 2 — the
    maximal number of job releases (and hence scheduling events) that the
    UAM permits inside any interval.  Any half-open window of length ``W``
    contains exactly one burst instant, so the sliding max is exactly
    ``a`` and the sliding min is ``a >= l``.
    """

    def __init__(self, spec: UAMSpec, phase: int = 0) -> None:
        if phase < 0:
            raise ValueError("phase must be non-negative")
        self.spec = spec
        self._phase = phase

    def generate(self, rng: random.Random, horizon: int) -> list[int]:
        times: list[int] = []
        t = self._phase
        while t < horizon:
            times.extend([t] * self.spec.max_arrivals)
            t += self.spec.window
        return times


class PoissonThinnedUAMGenerator(ArrivalGenerator):
    """Poisson proposals thinned into the UAM envelope.

    ``intensity`` scales the proposal rate relative to the peak rate
    ``a / W``; values above 1 produce heavy thinning and an envelope-
    saturating trace.  The lower-bound grid is merged in as for
    :class:`UniformUAMGenerator`.
    """

    def __init__(self, spec: UAMSpec, intensity: float = 1.0,
                 phase: int = 0) -> None:
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        self.spec = spec
        self._intensity = intensity
        self._phase = phase

    def generate(self, rng: random.Random, horizon: int) -> list[int]:
        spec = self.spec
        rate = self._intensity * spec.peak_rate
        extras: list[int] = []
        t = 0.0
        while True:
            t += rng.expovariate(rate)
            if t >= horizon:
                break
            extras.append(int(t))
        grid = _lower_bound_grid(spec, horizon, self._phase)
        preload = _virtual_grid_prefix(spec, self._phase)
        return _merge_thin(grid, extras, spec, preload=preload)


def generator_for(spec: UAMSpec, style: str = "uniform",
                  **kwargs) -> ArrivalGenerator:
    """Factory keyed by style name: ``uniform``, ``bursty``, ``poisson``,
    or ``periodic`` (the latter requires ``spec.is_periodic``)."""
    if style == "uniform":
        return UniformUAMGenerator(spec, **kwargs)
    if style == "bursty":
        return BurstyUAMGenerator(spec, **kwargs)
    if style == "poisson":
        return PoissonThinnedUAMGenerator(spec, **kwargs)
    if style == "periodic":
        if not spec.is_periodic:
            raise ValueError("periodic style requires a <1,1,W> spec")
        return PeriodicGenerator(spec.window, **kwargs)
    raise ValueError(f"unknown arrival style {style!r}")
