"""The Unimodal Arbitrary arrival Model (UAM).

UAM (Hermant & Le Lann 1998) describes a task's arrival behaviour as a
tuple ``<l, a, W>``: during *any* sliding time window of length ``W``, the
number of job arrivals is at least ``l`` and at most ``a``.  Jobs may
arrive simultaneously.  The periodic model is the special case
``<1, 1, W>``.  UAM embodies a stronger adversary than periodic/sporadic
models and subsumes them.

This package provides the spec type, exact sliding-window validators, and
several generators whose outputs are UAM-conformant by construction:
uniform, bursty/adversarial (the worst case used in the proof of the
paper's Theorem 2), Poisson-thinned and periodic.
"""

from repro.arrivals.spec import UAMSpec
from repro.arrivals.validate import (
    OnlineWindowCounter,
    UAMViolation,
    check_uam,
    max_arrivals_in_any_window,
    min_arrivals_in_any_window,
)
from repro.arrivals.generators import (
    ArrivalGenerator,
    BurstyUAMGenerator,
    PeriodicGenerator,
    PoissonThinnedUAMGenerator,
    UniformUAMGenerator,
    generator_for,
)

__all__ = [
    "UAMSpec",
    "OnlineWindowCounter",
    "UAMViolation",
    "check_uam",
    "max_arrivals_in_any_window",
    "min_arrivals_in_any_window",
    "ArrivalGenerator",
    "PeriodicGenerator",
    "UniformUAMGenerator",
    "BurstyUAMGenerator",
    "PoissonThinnedUAMGenerator",
    "generator_for",
]
