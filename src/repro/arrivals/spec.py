"""UAM arrival specification ``<l, a, W>``."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class UAMSpec:
    """Unimodal Arbitrary arrival Model tuple ``<l, a, W>``.

    ``min_arrivals`` (``l``) and ``max_arrivals`` (``a``) bound the number
    of job arrivals of the task in any sliding window of ``window`` (``W``)
    time ticks (ns).  ``<1, 1, W>`` recovers the periodic model with period
    ``W``; ``l = 0`` recovers sporadic-like behaviour where windows may be
    empty.
    """

    min_arrivals: int
    max_arrivals: int
    window: int

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.min_arrivals < 0:
            raise ValueError(
                f"min_arrivals must be non-negative, got {self.min_arrivals}"
            )
        if self.max_arrivals < 1:
            raise ValueError(
                f"max_arrivals must be at least 1, got {self.max_arrivals}"
            )
        if self.min_arrivals > self.max_arrivals:
            raise ValueError(
                f"min_arrivals ({self.min_arrivals}) exceeds "
                f"max_arrivals ({self.max_arrivals})"
            )

    @property
    def is_periodic(self) -> bool:
        """True for the ``<1, 1, W>`` special case."""
        return self.min_arrivals == 1 and self.max_arrivals == 1

    @property
    def peak_rate(self) -> float:
        """Maximum sustainable arrival rate, jobs per time tick."""
        return self.max_arrivals / self.window

    @property
    def guaranteed_rate(self) -> float:
        """Minimum long-run arrival rate, jobs per time tick."""
        return self.min_arrivals / self.window

    def max_arrivals_in(self, interval: int) -> int:
        """Upper bound on arrivals in any interval of the given length.

        This is the counting argument of the paper's Theorem 2 proof: an
        interval of length ``interval`` overlaps at most
        ``ceil(interval / W) + 1`` windows' worth of bursts, so at most
        ``a * (ceil(interval / W) + 1)`` arrivals fit in it.  (Holds also
        when ``interval < W``, where the bound evaluates to ``2a``.)
        """
        if interval < 0:
            raise ValueError("interval must be non-negative")
        if interval == 0:
            return self.max_arrivals
        return self.max_arrivals * (math.ceil(interval / self.window) + 1)

    def min_arrivals_in(self, interval: int) -> int:
        """Lower bound on arrivals in any interval of the given length:
        ``l * floor(interval / W)`` (the bound used in Lemma 4's proof)."""
        if interval < 0:
            raise ValueError("interval must be non-negative")
        return self.min_arrivals * (interval // self.window)

    @classmethod
    def periodic(cls, period: int) -> "UAMSpec":
        """The periodic special case ``<1, 1, period>``."""
        return cls(min_arrivals=1, max_arrivals=1, window=period)
