"""Exact sliding-window validation of arrival traces against a UAM spec.

Windows are half-open intervals ``[t, t + W)``.  With that convention an
evenly spaced grid with spacing ``W / l`` puts *exactly* ``l`` arrivals in
every window, which the generators exploit to enforce the lower bound.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.arrivals.spec import UAMSpec


@dataclass(frozen=True)
class UAMViolation:
    """A window in which the trace breaks the UAM bounds."""

    window_start: int
    count: int
    kind: str  # "max" or "min"

    def __str__(self) -> str:
        return (
            f"UAM {self.kind}-violation: window [{self.window_start}, "
            f"...) holds {self.count} arrivals"
        )


class OnlineWindowCounter:
    """Online counterpart of :func:`check_uam`'s max-bound check.

    Tracks admitted arrival times and answers, in amortized O(1), whether
    admitting one more arrival *now* would exceed ``limit`` arrivals in
    the half-open window ``(now - window, now]`` — the same convention as
    the offline validators.  Used by the kernel's UAM admission guard to
    detect out-of-spec arrivals as they happen.
    """

    def __init__(self, window: int, limit: int) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if limit < 1:
            raise ValueError("limit must be at least 1")
        self.window = window
        self.limit = limit
        self._admitted: list[int] = []
        self._left = 0          # index of the oldest arrival still in window

    def _advance(self, now: int) -> None:
        while (self._left < len(self._admitted)
               and self._admitted[self._left] <= now - self.window):
            self._left += 1

    def count_at(self, now: int) -> int:
        """Admitted arrivals inside ``(now - window, now]``."""
        self._advance(now)
        return len(self._admitted) - self._left

    def would_conform(self, now: int) -> bool:
        """True if admitting one more arrival at ``now`` stays in spec."""
        return self.count_at(now) < self.limit

    def admit(self, now: int) -> None:
        """Record an admitted arrival.  Times must be non-decreasing."""
        if self._admitted and now < self._admitted[-1]:
            raise ValueError("admission times must be non-decreasing")
        self._admitted.append(now)

    def earliest_admissible(self, now: int) -> int:
        """Earliest ``t >= now`` at which one more arrival would conform:
        the instant the ``limit``-th most recent admission leaves the
        sliding window."""
        if self.would_conform(now):
            return now
        blocker = self._admitted[len(self._admitted) - self.limit]
        return blocker + self.window

    @property
    def admitted_times(self) -> tuple[int, ...]:
        return tuple(self._admitted)


def max_arrivals_in_any_window(times: list[int], window: int) -> int:
    """Largest number of arrivals in any half-open window of the given
    length.  ``times`` must be sorted; simultaneous arrivals are allowed.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    best = 0
    left = 0
    for right, t in enumerate(times):
        while times[left] <= t - window:
            left += 1
        best = max(best, right - left + 1)
    return best


def min_arrivals_in_any_window(times: list[int], window: int,
                               horizon: int) -> int:
    """Smallest number of arrivals in any half-open window of the given
    length that fits entirely inside ``[0, horizon)``.

    Only windows fully inside the observation horizon are considered, since
    the trace says nothing about arrivals beyond it.  The minimum count is
    attained by some window starting at an arrival time, immediately after
    an arrival time, or at 0 — we scan those candidate starts.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if horizon < window:
        raise ValueError("horizon must be at least one window long")
    # The count only changes when an arrival leaves the window (start
    # t + 1) or enters at its right edge (start t - window + 1); the
    # minimum is attained at one of those change points or at the horizon
    # boundaries.
    candidates = {0, horizon - window}
    for t in times:
        for start in (t + 1, t - window + 1):
            if 0 <= start <= horizon - window:
                candidates.add(start)
    best = None
    for start in candidates:
        if start < 0 or start + window > horizon:
            continue
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_left(times, start + window)
        count = hi - lo
        if best is None or count < best:
            best = count
    return 0 if best is None else best


def check_uam(times: list[int], spec: UAMSpec,
              horizon: int | None = None) -> list[UAMViolation]:
    """Return all UAM violations of a sorted arrival trace.

    The max bound is checked over every window anchored at an arrival; the
    min bound (only when ``horizon`` is given) over every fully contained
    window.  An empty list means the trace conforms to ``spec``.
    """
    if any(b < a for a, b in zip(times, times[1:])):
        raise ValueError("arrival times must be sorted")
    violations: list[UAMViolation] = []
    left = 0
    for right, t in enumerate(times):
        while times[left] <= t - spec.window:
            left += 1
        count = right - left + 1
        if count > spec.max_arrivals:
            violations.append(
                UAMViolation(window_start=times[left], count=count, kind="max")
            )
    if horizon is not None and spec.min_arrivals > 0:
        if horizon >= spec.window:
            candidates = {0, horizon - spec.window}
            for t in times:
                for start in (t + 1, t - spec.window + 1):
                    if 0 <= start <= horizon - spec.window:
                        candidates.add(start)
            for start in sorted(candidates):
                lo = bisect.bisect_left(times, start)
                hi = bisect.bisect_left(times, start + spec.window)
                count = hi - lo
                if count < spec.min_arrivals:
                    violations.append(
                        UAMViolation(window_start=start, count=count, kind="min")
                    )
    return violations
