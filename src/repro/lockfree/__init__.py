"""Real lock-free data structures over a cooperative-interleaving VM.

The paper's implementation uses hardware CAS (QNX on a Pentium-III) and
the Michael & Scott lock-free queue [21].  Python's GIL makes native-
thread lock-free timing meaningless, so this package executes the *actual
published algorithms* — Michael–Scott queue, Treiber stack — over a
deterministic virtual machine in which every shared-memory operation
(load, store, CAS) is an explicit preemption point.  The VM can interleave
fibers round-robin, randomly (seeded), or adversarially, and the
structures count their CAS retries, which lets tests relate observed
retries to interference exactly as the paper's analysis does.

Linearizability of concurrent histories is checked with a Wing–Gong style
exhaustive checker against sequential reference specifications.
"""

from repro.lockfree.interleave import (
    Fiber,
    VM,
    adversarial_scheduler,
    random_scheduler,
    round_robin_scheduler,
)
from repro.lockfree.atomics import AtomicRef
from repro.lockfree.ms_queue import EMPTY, MSQueue
from repro.lockfree.linked_list import LockFreeLinkedList
from repro.lockfree.nbw import NBWRegister
from repro.lockfree.waitfree_register import WaitFreeRegister
from repro.lockfree.treiber_stack import STACK_EMPTY, TreiberStack
from repro.lockfree.linearizability import (
    Operation,
    SeqQueue,
    SeqStack,
    is_linearizable,
    recorded,
)

__all__ = [
    "VM",
    "Fiber",
    "round_robin_scheduler",
    "random_scheduler",
    "adversarial_scheduler",
    "AtomicRef",
    "MSQueue",
    "EMPTY",
    "LockFreeLinkedList",
    "NBWRegister",
    "WaitFreeRegister",
    "TreiberStack",
    "STACK_EMPTY",
    "Operation",
    "SeqQueue",
    "SeqStack",
    "is_linearizable",
    "recorded",
]
