"""Wing–Gong linearizability checking.

A concurrent history (one :class:`Operation` per completed call, with
logical invocation/response timestamps from the VM) is *linearizable* if
some total order of the operations (a) respects real-time precedence —
an operation that responded before another was invoked must come first —
and (b) is legal for the sequential specification.

The checker is the classic exhaustive search with memoization on the set
of already-linearized operations; fine for the test-sized histories
(tens of operations) it is used on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.lockfree.ms_queue import EMPTY
from repro.lockfree.treiber_stack import STACK_EMPTY


@dataclass(frozen=True)
class Operation:
    """A completed call in a concurrent history."""

    op: str                    # e.g. "enqueue", "dequeue"
    arg: Any
    result: Any
    invoked: int               # VM step at invocation
    responded: int             # VM step at response

    def __post_init__(self) -> None:
        if self.responded < self.invoked:
            raise ValueError("response precedes invocation")


def recorded(vm, history: list[Operation], op: str, arg: Any,
             gen) -> Generator[Any, None, Any]:
    """Wrap an operation generator so its invocation/response timestamps
    and result are appended to ``history``."""
    invoked = vm.now
    result = yield from gen
    history.append(Operation(op=op, arg=arg, result=result,
                             invoked=invoked, responded=vm.now))
    return result


class SeqQueue:
    """Sequential FIFO specification."""

    def __init__(self) -> None:
        self._items: list[Any] = []

    def apply(self, op: str, arg: Any) -> Any:
        if op == "enqueue":
            self._items.append(arg)
            return None
        if op == "dequeue":
            if not self._items:
                return EMPTY
            return self._items.pop(0)
        raise ValueError(f"unknown queue op {op!r}")

    def snapshot(self) -> tuple:
        return tuple(self._items)

    def restore(self, snap: tuple) -> None:
        self._items = list(snap)


class SeqStack:
    """Sequential LIFO specification."""

    def __init__(self) -> None:
        self._items: list[Any] = []

    def apply(self, op: str, arg: Any) -> Any:
        if op == "push":
            self._items.append(arg)
            return None
        if op == "pop":
            if not self._items:
                return STACK_EMPTY
            return self._items.pop()
        raise ValueError(f"unknown stack op {op!r}")

    def snapshot(self) -> tuple:
        return tuple(self._items)

    def restore(self, snap: tuple) -> None:
        self._items = list(snap)


class SeqSet:
    """Sequential set specification (Harris/Valois linked list)."""

    def __init__(self) -> None:
        self._keys: set[Any] = set()

    def apply(self, op: str, arg: Any) -> Any:
        if op == "insert":
            if arg in self._keys:
                return False
            self._keys.add(arg)
            return True
        if op == "delete":
            if arg in self._keys:
                self._keys.discard(arg)
                return True
            return False
        if op == "contains":
            return arg in self._keys
        raise ValueError(f"unknown set op {op!r}")

    def snapshot(self) -> frozenset:
        return frozenset(self._keys)

    def restore(self, snap: frozenset) -> None:
        self._keys = set(snap)


class SeqRegister:
    """Sequential register specification (NBW / wait-free SWMR).

    Reads ignore their argument (reader id), so the same spec covers the
    multi-reader protocols.
    """

    def __init__(self, initial: Any = None) -> None:
        self._value = initial
        self._initial = initial

    def apply(self, op: str, arg: Any) -> Any:
        if op == "write":
            self._value = arg
            return None
        if op == "read":
            return self._value
        raise ValueError(f"unknown register op {op!r}")

    def snapshot(self) -> tuple:
        return (self._value,)

    def restore(self, snap: tuple) -> None:
        (self._value,) = snap


def _results_equal(a: Any, b: Any) -> bool:
    # Sentinels compare by identity; values by equality.
    if a is b:
        return True
    if a in (EMPTY, STACK_EMPTY) or b in (EMPTY, STACK_EMPTY):
        return False
    return a == b


def is_linearizable(history: list[Operation], spec_factory) -> bool:
    """Exhaustively search for a legal linearization of ``history``
    against a fresh sequential spec from ``spec_factory``."""
    operations = list(history)
    n = len(operations)
    if n == 0:
        return True
    failed_states: set[tuple[frozenset[int], tuple]] = set()

    def search(remaining: frozenset[int], spec) -> bool:
        if not remaining:
            return True
        key = (remaining, spec.snapshot())
        if key in failed_states:
            return False
        # An op may linearize next only if no *other remaining* op
        # responded before it was invoked.
        min_response = min(operations[i].responded for i in remaining)
        for i in sorted(remaining):
            op = operations[i]
            if op.invoked > min_response:
                continue
            snap = spec.snapshot()
            actual = spec.apply(op.op, op.arg)
            if _results_equal(actual, op.result):
                if search(remaining - {i}, spec):
                    return True
            spec.restore(snap)
        failed_states.add(key)
        return False

    return search(frozenset(range(n)), spec_factory())
