"""The Michael & Scott non-blocking FIFO queue [21].

This is the queue the paper's implementation study uses ("We used the
lock-free queues introduced in [21]").  The algorithm is transcribed from
the original: a dummy-headed singly linked list with separate head and
tail pointers, helped tail swings, and fresh node allocation per enqueue
(which sidesteps ABA under garbage collection — Python's memory model
here plays the role of the original's type-stable allocator).

Every shared access goes through :class:`repro.lockfree.atomics.AtomicRef`
so the interleaving VM can preempt between any two of them.  Operations
are generators; drive them with the VM (or exhaust them directly for
sequential use).
"""

from __future__ import annotations

from typing import Any

from repro.lockfree.atomics import AtomicOp, AtomicRef


class _Sentinel:
    def __init__(self, label: str) -> None:
        self._label = label

    def __repr__(self) -> str:
        return self._label


#: Returned by dequeue on an empty queue.
EMPTY = _Sentinel("EMPTY")


class _Node:
    __slots__ = ("value", "next")

    def __init__(self, value: Any) -> None:
        self.value = value
        self.next = AtomicRef(None, name="node.next")


class MSQueue:
    """Lock-free multi-writer/multi-reader FIFO queue."""

    def __init__(self) -> None:
        dummy = _Node(None)
        self.head = AtomicRef(dummy, name="queue.head")
        self.tail = AtomicRef(dummy, name="queue.tail")
        #: Failed-attempt counters, aggregated across operations.
        self.enqueue_retries = 0
        self.dequeue_retries = 0

    def enqueue(self, value: Any) -> AtomicOp:
        """M&S enqueue: link at tail, then swing tail."""
        node = _Node(value)
        while True:
            tail = yield from self.tail.load()
            nxt = yield from tail.next.load()
            tail_check = yield from self.tail.load()
            if tail is not tail_check:
                self.enqueue_retries += 1
                continue
            if nxt is None:
                linked = yield from tail.next.cas(None, node)
                if linked:
                    # Swing the tail; failure means someone helped us.
                    yield from self.tail.cas(tail, node)
                    return None
                self.enqueue_retries += 1
            else:
                # Tail is lagging: help swing it, then retry.
                yield from self.tail.cas(tail, nxt)
                self.enqueue_retries += 1

    def dequeue(self) -> AtomicOp:
        """M&S dequeue: read value at head.next, swing head.  Returns
        :data:`EMPTY` when the queue has no elements."""
        while True:
            head = yield from self.head.load()
            tail = yield from self.tail.load()
            nxt = yield from head.next.load()
            head_check = yield from self.head.load()
            if head is not head_check:
                self.dequeue_retries += 1
                continue
            if head is tail:
                if nxt is None:
                    return EMPTY
                # Tail lagging behind a concurrent enqueue: help.
                yield from self.tail.cas(tail, nxt)
                self.dequeue_retries += 1
            else:
                value = nxt.value
                swung = yield from self.head.cas(head, nxt)
                if swung:
                    return value
                self.dequeue_retries += 1

    # ------------------------------------------------------------------
    # Non-concurrent helpers (tests / sequential use)
    # ------------------------------------------------------------------

    def drain_sequential(self) -> list[Any]:
        """Dequeue everything with no interleaving (test helper)."""
        out = []
        while True:
            value = run_op(self.dequeue())
            if value is EMPTY:
                return out
            out.append(value)

    @property
    def total_retries(self) -> int:
        return self.enqueue_retries + self.dequeue_retries


def run_op(op: AtomicOp) -> Any:
    """Exhaust an operation generator with no preemption (sequential
    semantics)."""
    try:
        while True:
            next(op)
    except StopIteration as stop:
        return stop.value
