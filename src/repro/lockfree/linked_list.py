"""Lock-free sorted linked list (set) — Valois [26] / Harris style.

The paper's related work cites Valois' CAS-based lock-free linked lists.
This implementation follows the now-standard Harris refinement of that
line: deletion is *logical first* (the victim's ``next`` pointer is
replaced by a mark wrapper via CAS, which simultaneously freezes it) and
*physical second* (any traversal unlinks marked nodes it passes — the
helping that gives lock-freedom).

All shared accesses go through :class:`repro.lockfree.atomics.AtomicRef`
so the interleaving VM can preempt between any two steps; CAS uses
identity, so each mark wrapper is a fresh object and ABA cannot
resurrect a deleted node.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.lockfree.atomics import AtomicOp, AtomicRef


class _Marked:
    """Mark wrapper: ``node.next`` holding ``_Marked(succ)`` means the
    node is logically deleted and must not be updated further."""

    __slots__ = ("successor",)

    def __init__(self, successor: "_Node | None") -> None:
        self.successor = successor


class _Node:
    __slots__ = ("key", "next")

    def __init__(self, key: Any, successor: "_Node | None") -> None:
        self.key = key
        self.next = AtomicRef(successor, name=f"list.next[{key!r}]")


class _Head:
    """Sentinel smaller than every key."""


class _Tail:
    """Sentinel larger than every key."""


def _less(a: Any, b: Any) -> bool:
    if isinstance(a, _Head) or isinstance(b, _Tail):
        return True
    if isinstance(a, _Tail) or isinstance(b, _Head):
        return False
    return a < b


class LockFreeLinkedList:
    """Sorted lock-free set with insert / delete / contains."""

    def __init__(self) -> None:
        self._tail = _Node(_Tail(), None)
        self._head = _Node(_Head(), self._tail)
        self.insert_retries = 0
        self.delete_retries = 0
        #: Marked nodes physically unlinked by traversals (helping).
        self.helped_unlinks = 0

    # ------------------------------------------------------------------
    # Internal search with helping
    # ------------------------------------------------------------------

    def _search(self, key: Any) -> Generator[Any, None, tuple[_Node, _Node]]:
        """Find ``(pred, curr)`` with ``pred.key < key <= curr.key``,
        unlinking marked nodes encountered on the way."""
        while True:
            pred = self._head
            curr = yield from pred.next.load()
            restart = False
            while True:
                nxt = yield from curr.next.load()
                while isinstance(nxt, _Marked):
                    # curr is logically deleted: help unlink it.
                    unlinked = yield from pred.next.cas(curr, nxt.successor)
                    if not unlinked:
                        restart = True
                        break
                    self.helped_unlinks += 1
                    curr = nxt.successor
                    nxt = yield from curr.next.load()
                if restart:
                    break
                if not _less(curr.key, key):
                    return pred, curr
                pred, curr = curr, nxt

    # ------------------------------------------------------------------
    # Public operations
    # ------------------------------------------------------------------

    def insert(self, key: Any) -> AtomicOp:
        """Add ``key``; returns False if already present."""
        while True:
            pred, curr = yield from self._search(key)
            if not isinstance(curr.key, _Tail) and curr.key == key:
                return False
            node = _Node(key, curr)  # private until linked; plain init
            linked = yield from pred.next.cas(curr, node)
            if linked:
                return True
            self.insert_retries += 1

    def delete(self, key: Any) -> AtomicOp:
        """Remove ``key``; returns False if absent."""
        while True:
            pred, curr = yield from self._search(key)
            if isinstance(curr.key, _Tail) or curr.key != key:
                return False
            succ = yield from curr.next.load()
            if isinstance(succ, _Marked):
                # Someone else is deleting it concurrently: retry (the
                # search will help unlink, then report absent).
                self.delete_retries += 1
                continue
            marked = yield from curr.next.cas(succ, _Marked(succ))
            if not marked:
                self.delete_retries += 1
                continue
            # Best-effort physical unlink; failure is fine (helpers will).
            yield from pred.next.cas(curr, succ)
            return True

    def contains(self, key: Any) -> AtomicOp:
        """Wait-free-ish membership test (pure traversal, no helping)."""
        curr = yield from self._head.next.load()
        while _less(curr.key, key):
            nxt = yield from curr.next.load()
            curr = nxt.successor if isinstance(nxt, _Marked) else nxt
        if isinstance(curr.key, _Tail) or curr.key != key:
            return False
        nxt = yield from curr.next.load()
        return not isinstance(nxt, _Marked)

    # ------------------------------------------------------------------
    # Non-concurrent helpers (tests)
    # ------------------------------------------------------------------

    def snapshot(self) -> list[Any]:
        """Unmarked keys, in order (outside the VM only)."""
        keys = []
        node = self._head.next.peek()
        while not isinstance(node.key, _Tail):
            nxt = node.next.peek()
            if isinstance(nxt, _Marked):
                node = nxt.successor
                continue
            keys.append(node.key)
            node = nxt
        return keys

    @property
    def total_retries(self) -> int:
        return self.insert_retries + self.delete_retries
