"""The Non-Blocking Write (NBW) protocol — Kopetz & Reisinger [16].

The paper's related work (Section 1.1) contrasts lock-free sharing with
wait-free protocols descending from NBW (Chen & Burns [6], Huang et
al. [14], Cho et al. [7]).  NBW is the root of that line: a single-writer
/ multi-reader register in which

* the **writer is wait-free**: it bumps a concurrency-control field (CCF)
  to an odd value, writes the data, and bumps the CCF to the next even
  value — never waiting on readers;
* **readers are lock-free**: a reader snapshots the CCF, copies the data,
  re-reads the CCF, and retries if the CCF was odd or changed — the
  retry-on-interference pattern whose cost the paper's Theorem 2 bounds.

Data is stored as a tuple of cells so tests can verify that a committed
read is never torn (all cells from the same write).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lockfree.atomics import AtomicOp, AtomicRef


class NBWRegister:
    """Single-writer / multi-reader register with NBW semantics."""

    def __init__(self, width: int = 1, initial: Any = None) -> None:
        if width < 1:
            raise ValueError("width must be at least 1")
        self.width = width
        self._ccf = AtomicRef(0, name="nbw.ccf")
        self._cells = tuple(
            AtomicRef(initial, name=f"nbw.cell{i}") for i in range(width)
        )
        #: Reader retry counter (the lock-free cost NBW pays).
        self.read_retries = 0
        #: Completed writes (writer is wait-free: one pass each).
        self.writes = 0

    def write(self, values: Sequence[Any]) -> AtomicOp:
        """Wait-free write: odd CCF -> cells -> even CCF.

        Exactly ``width + 2`` atomic steps, independent of reader
        activity — the wait-freedom the paper ascribes to NBW writers.
        """
        if len(values) != self.width:
            raise ValueError(f"expected {self.width} values")
        ccf = yield from self._ccf.load()
        yield from self._ccf.store(ccf + 1)        # odd: write in progress
        for cell, value in zip(self._cells, values):
            yield from cell.store(value)
        yield from self._ccf.store(ccf + 2)        # even: committed
        self.writes += 1
        return None

    def read(self) -> AtomicOp:
        """Lock-free read: retry until a clean double-read of the CCF
        brackets the data copy."""
        while True:
            before = yield from self._ccf.load()
            if before % 2 == 1:
                # Write in progress: retry.
                self.read_retries += 1
                continue
            snapshot = []
            for cell in self._cells:
                value = yield from cell.load()
                snapshot.append(value)
            after = yield from self._ccf.load()
            if after == before:
                return tuple(snapshot)
            self.read_retries += 1
