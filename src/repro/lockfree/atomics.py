"""Atomic cells for the interleaving VM.

Each operation is a generator that yields exactly once (the preemption
point) and then performs its effect atomically.  CAS uses identity
comparison — pointer semantics, as on real hardware — which also means
the classic ABA hazard is faithfully reproducible (and avoided by the
shipped algorithms the same way the originals avoid it: fresh node
allocation per operation).
"""

from __future__ import annotations

from typing import Any, Generator

AtomicOp = Generator[Any, None, Any]


class AtomicRef:
    """A shared cell supporting load / store / compare-and-swap.

    Per-cell operation counters (``loads``, ``stores``, ``cas_attempts``,
    ``cas_failures``) feed the retry statistics the tests compare against
    the paper's bounds.
    """

    __slots__ = ("_value", "name", "loads", "stores", "cas_attempts",
                 "cas_failures")

    def __init__(self, value: Any = None, name: str = "") -> None:
        self._value = value
        self.name = name
        self.loads = 0
        self.stores = 0
        self.cas_attempts = 0
        self.cas_failures = 0

    def load(self) -> AtomicOp:
        yield ("load", self.name)
        self.loads += 1
        return self._value

    def store(self, value: Any) -> AtomicOp:
        yield ("store", self.name)
        self.stores += 1
        self._value = value
        return None

    def cas(self, expected: Any, new: Any) -> AtomicOp:
        """Compare-and-swap with identity comparison; returns success."""
        yield ("cas", self.name)
        self.cas_attempts += 1
        if self._value is expected:
            self._value = new
            return True
        self.cas_failures += 1
        return False

    def peek(self) -> Any:
        """Non-yielding read for assertions outside the VM (tests only —
        never inside a fiber)."""
        return self._value

    def __repr__(self) -> str:
        label = self.name or "anon"
        return f"AtomicRef({label}={self._value!r})"
