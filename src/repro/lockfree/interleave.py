"""Cooperative-interleaving virtual machine.

Fibers are Python generators.  Every shared-memory primitive
(:class:`repro.lockfree.atomics.AtomicRef` operations) yields exactly once
before taking effect; the yield is the only point at which the VM may
switch fibers, and the effect executes atomically on resume.  This gives
genuine sequential-consistency semantics with a controllable adversary —
precisely what is needed to exercise lock-free algorithms without native
threads.

Schedulers are callables ``(runnable_fibers, rng, step) -> fiber``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Iterable, Sequence

FiberGen = Generator[Any, None, Any]
Scheduler = Callable[[list["Fiber"], random.Random, int], "Fiber"]


class Fiber:
    """One cooperative thread of execution."""

    def __init__(self, name: str, gen: FiberGen) -> None:
        self.name = name
        self.gen = gen
        self.done = False
        self.result: Any = None
        self.steps = 0

    def __repr__(self) -> str:
        state = "done" if self.done else f"steps={self.steps}"
        return f"Fiber({self.name}, {state})"


def round_robin_scheduler(runnable: list[Fiber], rng: random.Random,
                          step: int) -> Fiber:
    """Cycle through fibers one step each."""
    return runnable[step % len(runnable)]


def random_scheduler(runnable: list[Fiber], rng: random.Random,
                     step: int) -> Fiber:
    """Uniformly random fiber each step — the usual linearizability
    fuzzer."""
    return rng.choice(runnable)


def scripted_scheduler(script: Sequence[str]) -> Scheduler:
    """Replay an exact interleaving: ``script[step]`` names the fiber to
    run at that global step.  Once the script is exhausted (or the named
    fiber has finished) it falls back to round-robin, so a test can pin
    the critical prefix of an execution and let the tail drain freely."""

    def schedule(runnable: list[Fiber], rng: random.Random,
                 step: int) -> Fiber:
        if step < len(script):
            for fiber in runnable:
                if fiber.name == script[step]:
                    return fiber
        return runnable[step % len(runnable)]

    return schedule


def adversarial_scheduler(burst: int = 3) -> Scheduler:
    """Run one fiber for ``burst`` steps, then switch to another random
    fiber: maximizes mid-operation preemptions, the retry-inducing pattern
    of the paper's model."""

    state = {"current": None, "left": 0}

    def schedule(runnable: list[Fiber], rng: random.Random,
                 step: int) -> Fiber:
        current = state["current"]
        if current is not None and not current.done and current in runnable \
                and state["left"] > 0:
            state["left"] -= 1
            return current
        choices = [f for f in runnable if f is not current] or runnable
        chosen = rng.choice(choices)
        state["current"] = chosen
        state["left"] = burst - 1
        return chosen

    return schedule


class VM:
    """Steps fibers until all complete (or a step budget runs out)."""

    def __init__(self, scheduler: Scheduler | None = None,
                 seed: int = 0) -> None:
        self.scheduler = scheduler or round_robin_scheduler
        self.rng = random.Random(seed)
        self.fibers: list[Fiber] = []
        #: Global step counter — used as the logical timestamp for
        #: linearizability histories.
        self.now = 0

    def spawn(self, name: str, gen: FiberGen) -> Fiber:
        fiber = Fiber(name, gen)
        self.fibers.append(fiber)
        return fiber

    @property
    def runnable(self) -> list[Fiber]:
        return [f for f in self.fibers if not f.done]

    def step(self) -> bool:
        """Advance one fiber by one atomic step.  Returns False when
        nothing is runnable."""
        runnable = self.runnable
        if not runnable:
            return False
        fiber = self.scheduler(runnable, self.rng, self.now)
        self.now += 1
        fiber.steps += 1
        try:
            next(fiber.gen)
        except StopIteration as stop:
            fiber.done = True
            fiber.result = stop.value
        return True

    def run(self, max_steps: int = 1_000_000) -> None:
        """Step until every fiber completes.

        Raises ``RuntimeError`` if the budget is exhausted — for a
        lock-free algorithm under any fair scheduler that indicates a
        livelock bug, which is exactly what the budget is here to catch.
        """
        for _ in range(max_steps):
            if not self.step():
                return
        raise RuntimeError(
            f"VM exceeded {max_steps} steps with fibers still runnable: "
            f"{[f.name for f in self.runnable]}"
        )

    def results(self) -> dict[str, Any]:
        return {f.name: f.result for f in self.fibers}


def run_interleaved(bodies: Iterable[tuple[str, FiberGen]],
                    scheduler: Scheduler | None = None,
                    seed: int = 0,
                    max_steps: int = 1_000_000) -> VM:
    """Convenience: spawn all bodies, run to completion, return the VM."""
    vm = VM(scheduler=scheduler, seed=seed)
    for name, gen in bodies:
        vm.spawn(name, gen)
    vm.run(max_steps=max_steps)
    return vm
