"""Treiber's lock-free stack [25].

The second classic structure the paper's related work highlights
("Efficient lock-free objects, such as queues and stacks").  Push and pop
are single-CAS loops on the top pointer; fresh node allocation per push
avoids ABA under garbage collection.
"""

from __future__ import annotations

from typing import Any

from repro.lockfree.atomics import AtomicOp, AtomicRef
from repro.lockfree.ms_queue import _Sentinel, run_op

#: Returned by pop on an empty stack.
STACK_EMPTY = _Sentinel("STACK_EMPTY")


class _Node:
    __slots__ = ("value", "below")

    def __init__(self, value: Any, below: "_Node | None") -> None:
        self.value = value
        self.below = below


class TreiberStack:
    """Lock-free LIFO stack."""

    def __init__(self) -> None:
        self.top = AtomicRef(None, name="stack.top")
        self.push_retries = 0
        self.pop_retries = 0

    def push(self, value: Any) -> AtomicOp:
        while True:
            top = yield from self.top.load()
            node = _Node(value, top)
            done = yield from self.top.cas(top, node)
            if done:
                return None
            self.push_retries += 1

    def pop(self) -> AtomicOp:
        while True:
            top = yield from self.top.load()
            if top is None:
                return STACK_EMPTY
            done = yield from self.top.cas(top, top.below)
            if done:
                return top.value
            self.pop_retries += 1

    # ------------------------------------------------------------------
    # Non-concurrent helpers
    # ------------------------------------------------------------------

    def drain_sequential(self) -> list[Any]:
        out = []
        while True:
            value = run_op(self.pop())
            if value is STACK_EMPTY:
                return out
            out.append(value)

    @property
    def total_retries(self) -> int:
        return self.push_retries + self.pop_retries
