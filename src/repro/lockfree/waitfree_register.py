"""Multi-buffer wait-free single-writer / multi-reader register.

The Chen & Burns line of work the paper cites [6, 14, 7] turns NBW's
lock-free readers into *wait-free* readers by spending space and using
**process consensus**: each reader owns an announcement slot that is
written by compare-and-swap from *both* sides — the reader claims the
buffer it intends to read, and the writer *helps* any reader that has
not yet claimed one by assigning it the freshly published buffer.
Whoever's CAS wins, the slot ends up naming a protected buffer, and the
writer never reuses a buffer named in any slot, so with
``n_readers + 2`` buffers every operation finishes in a constant number
of steps.

This is exactly the tradeoff the paper highlights in Section 1.1: the
wait-free scheme needs a-priori knowledge of the maximum number of
readers (hard for the paper's dynamic systems, which is why the paper
pursues lock-free instead) and pays buffers + helping for the bounded
steps.

Protocol (slots hold a buffer index or the sentinel ``FREE = -1``):

* Reader ``i``: ``slot[i] := FREE``; ``r := latest``;
  ``CAS(slot[i], FREE, r)`` — on failure the writer already helped, so
  ``r := slot[i]``; copy ``buffers[r]``; ``slot[i] := FREE``.
* Writer: scan ``latest`` and all slots; pick a buffer outside that set
  (one always exists); write the value; ``latest := target``; then for
  each reader ``CAS(slot[i], FREE, target)`` (the help).
"""

from __future__ import annotations

from typing import Any

from repro.lockfree.atomics import AtomicOp, AtomicRef

FREE = -1


class WaitFreeRegister:
    """Wait-free SWMR register with ``n_readers + 2`` buffers."""

    def __init__(self, n_readers: int, initial: Any = None) -> None:
        if n_readers < 1:
            raise ValueError("need at least one reader")
        self.n_readers = n_readers
        self.n_buffers = n_readers + 2
        self._buffers = [
            AtomicRef(initial, name=f"wf.buf{i}")
            for i in range(self.n_buffers)
        ]
        self._latest = AtomicRef(0, name="wf.latest")
        self._slots = [
            AtomicRef(FREE, name=f"wf.slot{i}") for i in range(n_readers)
        ]
        self.writes = 0
        #: Reads that were helped by the writer (their own claim lost the
        #: consensus) — visible evidence of the helping mechanism.
        self.helped_reads = 0

    def write(self, value: Any) -> AtomicOp:
        """Constant-step write: scan, fill a free buffer, publish, help."""
        forbidden = set()
        latest = yield from self._latest.load()
        forbidden.add(latest)
        for slot in self._slots:
            claimed = yield from slot.load()
            if claimed != FREE:
                forbidden.add(claimed)
        # n_readers + 2 buffers, at most n_readers + 1 forbidden: a free
        # buffer always exists — the space-for-progress trade.
        target = next(
            i for i in range(self.n_buffers) if i not in forbidden
        )
        yield from self._buffers[target].store(value)
        yield from self._latest.store(target)
        # Help: give the fresh buffer to every reader still undecided.
        for slot in self._slots:
            yield from slot.cas(FREE, target)
        self.writes += 1
        return None

    def read(self, reader_id: int) -> AtomicOp:
        """Constant-step read: claim via consensus, copy, release."""
        if not 0 <= reader_id < self.n_readers:
            raise ValueError("bad reader id")
        slot = self._slots[reader_id]
        yield from slot.store(FREE)
        intended = yield from self._latest.load()
        claimed_ok = yield from slot.cas(FREE, intended)
        if claimed_ok:
            target = intended
        else:
            # The writer helped first; its assignment wins the consensus.
            target = yield from slot.load()
            self.helped_reads += 1
        value = yield from self._buffers[target].load()
        yield from slot.store(FREE)
        return value
