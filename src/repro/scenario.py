"""Declarative simulation scenarios.

A :class:`Scenario` is a frozen value object that captures *everything*
that defines one simulation run — workload, synchronization style,
horizon, seed and seeding convention, arrival generation, the optional
fault/degradation layer — so that one canonical entry point,
:func:`repro.api.simulate`, can execute it.  The older convenience
helpers (``quick_simulation``, ``run_simulations``,
``experiments.runner.run_once``) are thin wrappers that build a Scenario
and call ``simulate``.

Two sourcing styles are supported, exactly one of which must be set:

* ``workload=`` — a picklable
  :class:`repro.experiments.workloads.BuilderSpec`; the task set is
  rebuilt from the scenario's own seed, so the scenario is fully
  serializable (:meth:`to_dict` / :meth:`from_dict` round-trip).
* ``tasks=`` — an explicit tuple of :class:`~repro.tasks.task.TaskSpec`;
  optionally with explicit ``arrival_traces`` (used by ``run_once``,
  whose caller owns the RNG that produced the traces).

Seeding conventions (``seeding=``), preserved bit-for-bit from the
legacy helpers:

* ``"shared"`` — one ``random.Random(seed)`` stream builds the task set
  (if any) and then continues into arrival generation.  This is the
  historical ``simulate(tasks, ...)`` / ``simulation_trial`` behaviour.
* ``"split"`` — tasks from ``Random(seed)``, arrivals from
  ``Random(seed + 1)``.  This is the historical ``quick_simulation``
  behaviour (which passed ``seed + 1`` to ``simulate``).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Mapping

from repro.arrivals.generators import generator_for
from repro.faults.degradation import AdmissionPolicy, RetryGuard
from repro.faults.plan import FaultPlan
from repro.sim.objects import RetryPolicy
from repro.sim.overheads import KernelCosts
from repro.tasks.task import TaskSpec

if TYPE_CHECKING:  # import-cycle guard: workloads -> experiments -> runner
    from repro.experiments.workloads import BuilderSpec

__all__ = ["Scenario", "SYNC_STYLES", "SEEDING_STYLES", "POLICY_OVERRIDES"]

#: Synchronization styles understood by
#: :func:`repro.api.build_policy_and_mode`.
SYNC_STYLES = ("lockfree", "lockbased", "ideal", "edf")

SEEDING_STYLES = ("shared", "split")

#: Optional scheduler-policy overrides.  ``None`` derives the policy
#: from ``sync`` (RUA variants, or EDF for ``sync="edf"``).
POLICY_OVERRIDES = ("edf", "llf")


@dataclass(frozen=True, slots=True)
class Scenario:
    """One fully-specified simulation run.

    Frozen and hashable-by-equality; lists passed for ``tasks`` /
    ``arrival_traces`` are normalized to tuples.
    """

    sync: str = "lockfree"
    horizon: int = 500_000_000
    seed: int = 0
    workload: BuilderSpec | None = None
    tasks: tuple[TaskSpec, ...] | None = None
    arrival_traces: tuple[tuple[int, ...], ...] | None = None
    seeding: str = "shared"
    arrival_style: str = "uniform"
    policy: str | None = None
    retry_policy: RetryPolicy = RetryPolicy.ON_CONFLICT
    trace: bool = False
    faults: FaultPlan | None = None
    admission: AdmissionPolicy | None = None
    retry_guard: RetryGuard | None = None
    monitors: bool = False
    costs: KernelCosts | None = None

    def __post_init__(self) -> None:
        if self.sync not in SYNC_STYLES:
            raise ValueError(
                f"unknown sync style {self.sync!r}; known: {SYNC_STYLES}")
        if self.seeding not in SEEDING_STYLES:
            raise ValueError(
                f"unknown seeding style {self.seeding!r}; "
                f"known: {SEEDING_STYLES}")
        if self.policy is not None and self.policy not in POLICY_OVERRIDES:
            raise ValueError(
                f"unknown policy override {self.policy!r}; "
                f"known: {POLICY_OVERRIDES}")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if (self.workload is None) == (self.tasks is None):
            raise ValueError(
                "exactly one of workload= and tasks= must be given")
        if isinstance(self.retry_policy, str):
            object.__setattr__(
                self, "retry_policy", RetryPolicy(self.retry_policy))
        if self.tasks is not None and not isinstance(self.tasks, tuple):
            object.__setattr__(self, "tasks", tuple(self.tasks))
        if self.arrival_traces is not None:
            if self.tasks is None:
                raise ValueError(
                    "explicit arrival_traces require explicit tasks")
            object.__setattr__(
                self, "arrival_traces",
                tuple(tuple(trace) for trace in self.arrival_traces))
            if len(self.arrival_traces) != len(self.tasks):
                raise ValueError(
                    "arrival_traces must match tasks one-to-one")

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(self) -> tuple[list[TaskSpec], list[list[int]]]:
        """Build the concrete task set and per-task arrival traces.

        Pure function of the scenario (deterministic in ``seed``), per
        the seeding conventions in the module docstring.
        """
        rng = random.Random(self.seed)
        if self.workload is not None:
            tasks = list(self.workload(rng))
        else:
            tasks = list(self.tasks)
        if self.arrival_traces is not None:
            return tasks, [list(trace) for trace in self.arrival_traces]
        if self.seeding == "split":
            rng = random.Random(self.seed + 1)
        traces = [
            generator_for(task.arrival,
                          self.arrival_style).generate(rng, self.horizon)
            for task in tasks
        ]
        return tasks, traces

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Serialize a *declarative* scenario (``workload=``-sourced, no
        runtime-object components) to plain JSON-compatible types.

        Raises :class:`ValueError` for scenarios carrying explicit task
        objects, traces, or fault-layer components — those are runtime
        objects without a stable wire format.
        """
        for name in ("tasks", "arrival_traces", "faults", "admission",
                     "retry_guard"):
            if getattr(self, name) is not None:
                raise ValueError(
                    f"Scenario.{name} is not serializable; only "
                    f"declarative (workload=) scenarios round-trip")
        return {
            "sync": self.sync,
            "horizon": self.horizon,
            "seed": self.seed,
            "workload": {
                "factory": self.workload.factory,
                "params": dict(self.workload.params),
            },
            "seeding": self.seeding,
            "arrival_style": self.arrival_style,
            "policy": self.policy,
            "retry_policy": self.retry_policy.value,
            "trace": self.trace,
            "monitors": self.monitors,
            "costs": None if self.costs is None else {
                "context_switch": self.costs.context_switch,
                "lock_overhead": self.costs.lock_overhead,
                "cas_overhead": self.costs.cas_overhead,
                "timer_overhead": self.costs.timer_overhead,
            },
        }

    def canonical_json(self) -> str:
        """The canonical wire encoding of this scenario: :meth:`to_dict`
        serialized with sorted keys and no whitespace.  Two scenarios
        are equal iff their canonical encodings are equal, regardless of
        the key order any transport delivered them in."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """Stable SHA-256 hex digest of the canonical encoding.

        The digest is a pure function of the scenario's declarative
        content — identical across process restarts, dict orderings and
        machines — so it can key a content-addressed result store: any
        field change yields a different digest, and equal digests imply
        byte-identical ``simulate(scenario)`` results at a fixed code
        version.  Like :meth:`to_dict`, it is only defined for
        declarative (``workload=``-sourced) scenarios.
        """
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {field.name for field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown Scenario keys: {sorted(unknown)}")
        from repro.experiments.workloads import BuilderSpec

        payload = dict(data)
        workload = payload.pop("workload", None)
        if workload is not None:
            workload = BuilderSpec.make(workload["factory"],
                                        **workload["params"])
        costs = payload.pop("costs", None)
        if costs is not None:
            costs = KernelCosts(**costs)
        return cls(workload=workload, costs=costs, **payload)
